// Package mathx provides the small dense linear-algebra, sampling and
// statistics substrate used by every other package in this repository.
//
// The recommendation models in the reproduced paper (GMF, PRME and a
// one-hidden-layer MLP) only need dense vector arithmetic, so this
// package deliberately stays minimal: contiguous []float64 vectors,
// row-major matrices, and the handful of distributions the protocols
// and datasets sample from. Everything is allocation-conscious because
// the protocol simulators call these ops millions of times per run.
package mathx

import (
	"fmt"
	"math"
)

// Dot returns the inner product of a and b.
// It panics if the lengths differ.
//
// The loop is 4-way unrolled with independent accumulators so the
// multiply-adds pipeline instead of serializing on one register; the
// partial sums are combined pairwise at the end, which keeps the
// result deterministic (though not bit-identical to a strictly
// sequential sum).
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mathx: Dot length mismatch %d != %d", len(a), len(b)))
	}
	var s0, s1, s2, s3 float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		bb := b[i : i+4 : i+4]
		aa := a[i : i+4 : i+4]
		s0 += aa[0] * bb[0]
		s1 += aa[1] * bb[1]
		s2 += aa[2] * bb[2]
		s3 += aa[3] * bb[3]
	}
	s := (s0 + s1) + (s2 + s3)
	for ; i < len(a); i++ {
		s += a[i] * b[i]
	}
	return s
}

// Axpy computes dst += alpha*x element-wise.
// It panics if the lengths differ.
//
// 4-way unrolled; element updates are independent, so the result is
// bit-identical to the naive loop.
func Axpy(alpha float64, x, dst []float64) {
	if len(x) != len(dst) {
		panic(fmt.Sprintf("mathx: Axpy length mismatch %d != %d", len(x), len(dst)))
	}
	i := 0
	for ; i+4 <= len(x); i += 4 {
		xx := x[i : i+4 : i+4]
		dd := dst[i : i+4 : i+4]
		dd[0] += alpha * xx[0]
		dd[1] += alpha * xx[1]
		dd[2] += alpha * xx[2]
		dd[3] += alpha * xx[3]
	}
	for ; i < len(x); i++ {
		dst[i] += alpha * x[i]
	}
}

// Scale multiplies every element of x by alpha in place (4-way
// unrolled; bit-identical to the naive loop).
func Scale(alpha float64, x []float64) {
	i := 0
	for ; i+4 <= len(x); i += 4 {
		xx := x[i : i+4 : i+4]
		xx[0] *= alpha
		xx[1] *= alpha
		xx[2] *= alpha
		xx[3] *= alpha
	}
	for ; i < len(x); i++ {
		x[i] *= alpha
	}
}

// Lerp overwrites dst with beta*dst + (1-beta)*x, the exponential
// moving average step used by the attack's momentum tracker (Eq. 4 of
// the paper). It panics if the lengths differ.
//
// 4-way unrolled; element updates are independent, so the result is
// bit-identical to the naive loop.
func Lerp(beta float64, dst, x []float64) {
	if len(x) != len(dst) {
		panic(fmt.Sprintf("mathx: Lerp length mismatch %d != %d", len(dst), len(x)))
	}
	ib := 1 - beta
	i := 0
	for ; i+4 <= len(dst); i += 4 {
		xx := x[i : i+4 : i+4]
		dd := dst[i : i+4 : i+4]
		dd[0] = beta*dd[0] + ib*xx[0]
		dd[1] = beta*dd[1] + ib*xx[1]
		dd[2] = beta*dd[2] + ib*xx[2]
		dd[3] = beta*dd[3] + ib*xx[3]
	}
	for ; i < len(dst); i++ {
		dst[i] = beta*dst[i] + ib*x[i]
	}
}

// Zero sets every element of x to zero.
func Zero(x []float64) {
	clear(x)
}

// Fill sets every element of x to v.
func Fill(x []float64, v float64) {
	for i := range x {
		x[i] = v
	}
}

// L2Norm returns the Euclidean norm of x.
//
// The loop body is 4-way unrolled (full-slice views eliminate the
// per-element bounds checks) but — deliberately unlike Dot — keeps a
// single accumulator with strictly sequential adds. L2Norm sits on the
// training path (ClipL2 gates every PRME embedding update), where the
// repository's bit-reproducibility contract pins the sequential
// addition order: switching to Dot's independent-accumulator
// pairwise-combine scheme would shift every clip decision by a few ulps
// and invalidate the golden end-to-end hashes. The pure-scoring batch
// kernels (Gemv and friends) are where the pairwise scheme applies.
func L2Norm(x []float64) float64 {
	var s float64
	i := 0
	for ; i+4 <= len(x); i += 4 {
		xx := x[i : i+4 : i+4]
		s += xx[0] * xx[0]
		s += xx[1] * xx[1]
		s += xx[2] * xx[2]
		s += xx[3] * xx[3]
	}
	for ; i < len(x); i++ {
		s += x[i] * x[i]
	}
	return math.Sqrt(s)
}

// SqDist returns the squared Euclidean distance between a and b.
// It panics if the lengths differ.
//
// 4-way unrolled with a single sequential accumulator, for the same
// reason as L2Norm: SqDist is PRME's training-time score kernel, so its
// addition order is part of the golden determinism contract (see the
// pairwise-combine note on Dot for the scheme the scoring-only kernels
// use instead).
func SqDist(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mathx: SqDist length mismatch %d != %d", len(a), len(b)))
	}
	var s float64
	i := 0
	for ; i+4 <= len(a); i += 4 {
		aa := a[i : i+4 : i+4]
		bb := b[i : i+4 : i+4]
		d0 := aa[0] - bb[0]
		s += d0 * d0
		d1 := aa[1] - bb[1]
		s += d1 * d1
		d2 := aa[2] - bb[2]
		s += d2 * d2
		d3 := aa[3] - bb[3]
		s += d3 * d3
	}
	for ; i < len(a); i++ {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// ClipL2 scales x in place so that its L2 norm does not exceed c.
// It returns the factor applied (1 when no clipping occurred).
// A non-positive c leaves x untouched.
func ClipL2(x []float64, c float64) float64 {
	if c <= 0 {
		return 1
	}
	n := L2Norm(x)
	if n <= c || n == 0 {
		return 1
	}
	f := c / n
	Scale(f, x)
	return f
}

// Hadamard writes the element-wise product of a and b into dst.
// dst may alias a or b. It panics if the lengths differ.
func Hadamard(a, b, dst []float64) {
	if len(a) != len(b) || len(a) != len(dst) {
		panic(fmt.Sprintf("mathx: Hadamard length mismatch %d/%d/%d", len(a), len(b), len(dst)))
	}
	for i := range dst {
		dst[i] = a[i] * b[i]
	}
}

// Sigmoid returns 1/(1+exp(-x)) computed in a numerically stable way.
func Sigmoid(x float64) float64 {
	if x >= 0 {
		return 1 / (1 + math.Exp(-x))
	}
	e := math.Exp(x)
	return e / (1 + e)
}

// LogSigmoid returns log(sigmoid(x)) without overflow for large |x|.
func LogSigmoid(x float64) float64 {
	if x >= 0 {
		return -math.Log1p(math.Exp(-x))
	}
	return x - math.Log1p(math.Exp(x))
}

// Softmax overwrites x with its softmax. It is numerically stable and
// safe for an all-equal input.
func Softmax(x []float64) {
	if len(x) == 0 {
		return
	}
	m := x[0]
	for _, v := range x[1:] {
		if v > m {
			m = v
		}
	}
	var sum float64
	for i, v := range x {
		e := math.Exp(v - m)
		x[i] = e
		sum += e
	}
	for i := range x {
		x[i] /= sum
	}
}

// ReLU writes max(0, x_i) into dst. dst may alias x.
func ReLU(x, dst []float64) {
	if len(x) != len(dst) {
		panic(fmt.Sprintf("mathx: ReLU length mismatch %d != %d", len(x), len(dst)))
	}
	for i, v := range x {
		if v > 0 {
			dst[i] = v
		} else {
			dst[i] = 0
		}
	}
}

// Sum returns the sum of the elements of x.
func Sum(x []float64) float64 {
	var s float64
	for _, v := range x {
		s += v
	}
	return s
}

// Mean returns the arithmetic mean of x, or 0 for an empty slice.
func Mean(x []float64) float64 {
	if len(x) == 0 {
		return 0
	}
	return Sum(x) / float64(len(x))
}

// Dot3 returns Σ a[i]*b[i]*c[i], accumulated strictly left to right.
// Unlike Dot it must stay sequential: it is the scalar reference for
// golden-pinned triple-product scores (GMF's h·(u ⊙ q)), and callers'
// hashes pin the naive accumulation order. It panics if the lengths
// differ.
func Dot3(a, b, c []float64) float64 {
	if len(a) != len(b) || len(a) != len(c) {
		panic(fmt.Sprintf("mathx: Dot3 length mismatch %d, %d, %d", len(a), len(b), len(c)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i] * c[i]
	}
	return s
}

// AxpyDiff computes dst += alpha*(x - y) element-wise — the weighted
// delta-accumulation at the core of the FedAvg reduce. Element
// updates are independent, so the 4-way unroll is bit-identical to
// the naive loop. It panics if the lengths differ.
func AxpyDiff(alpha float64, x, y, dst []float64) {
	if len(x) != len(dst) || len(y) != len(dst) {
		panic(fmt.Sprintf("mathx: AxpyDiff length mismatch %d, %d != %d", len(x), len(y), len(dst)))
	}
	i := 0
	for ; i+4 <= len(x); i += 4 {
		xx := x[i : i+4 : i+4]
		yy := y[i : i+4 : i+4]
		dd := dst[i : i+4 : i+4]
		dd[0] += alpha * (xx[0] - yy[0])
		dd[1] += alpha * (xx[1] - yy[1])
		dd[2] += alpha * (xx[2] - yy[2])
		dd[3] += alpha * (xx[3] - yy[3])
	}
	for ; i < len(x); i++ {
		dst[i] += alpha * (x[i] - y[i])
	}
}

// DriftToward computes x -= c*(x - ref) element-wise: the
// drift-regularizer step that pulls a row toward its reference value,
// shared by every personalized model family. Element updates are
// independent, so the result is bit-identical to the naive loop. It
// panics if the lengths differ.
func DriftToward(c float64, ref, x []float64) {
	if len(ref) != len(x) {
		panic(fmt.Sprintf("mathx: DriftToward length mismatch %d != %d", len(ref), len(x)))
	}
	i := 0
	for ; i+4 <= len(x); i += 4 {
		rr := ref[i : i+4 : i+4]
		xx := x[i : i+4 : i+4]
		xx[0] -= c * (xx[0] - rr[0])
		xx[1] -= c * (xx[1] - rr[1])
		xx[2] -= c * (xx[2] - rr[2])
		xx[3] -= c * (xx[3] - rr[3])
	}
	for ; i < len(x); i++ {
		x[i] -= c * (x[i] - ref[i])
	}
}
