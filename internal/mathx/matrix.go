package mathx

import "fmt"

// Matrix is a dense row-major matrix backed by a single contiguous
// slice. Row views are cheap sub-slices, which is the access pattern of
// every embedding table in the repository (user × dim, item × dim).
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zeroed Rows×Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("mathx: NewMatrix negative shape %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Row returns a mutable view of row i.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.Rows {
		panic(fmt.Sprintf("mathx: row %d out of range [0,%d)", i, m.Rows))
	}
	return m.Data[i*m.Cols : (i+1)*m.Cols]
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mathx: col %d out of range [0,%d)", j, m.Cols))
	}
	return m.Row(i)[j]
}

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) {
	if j < 0 || j >= m.Cols {
		panic(fmt.Sprintf("mathx: col %d out of range [0,%d)", j, m.Cols))
	}
	m.Row(i)[j] = v
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	out := &Matrix{Rows: m.Rows, Cols: m.Cols, Data: make([]float64, len(m.Data))}
	copy(out.Data, m.Data)
	return out
}

// CopyFrom overwrites m with the contents of src.
// It panics on shape mismatch.
func (m *Matrix) CopyFrom(src *Matrix) {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		panic(fmt.Sprintf("mathx: CopyFrom shape mismatch %dx%d != %dx%d",
			m.Rows, m.Cols, src.Rows, src.Cols))
	}
	copy(m.Data, src.Data)
}

// MulVec computes dst = m · x where x has length Cols and dst length
// Rows. It panics on shape mismatch. The product runs on the blocked
// Gemv kernel; each row accumulates exactly as Dot, so the result is
// bit-identical to the historical per-row loop.
func (m *Matrix) MulVec(x, dst []float64) {
	if len(x) != m.Cols || len(dst) != m.Rows {
		panic(fmt.Sprintf("mathx: MulVec shape mismatch: x %d, dst %d for %dx%d",
			len(x), len(dst), m.Rows, m.Cols))
	}
	Gemv(m, x, nil, dst)
}

// MulVecT computes dst = mᵀ · x where x has length Rows and dst length
// Cols. It panics on shape mismatch.
func (m *Matrix) MulVecT(x, dst []float64) {
	if len(x) != m.Rows || len(dst) != m.Cols {
		panic("mathx: MulVecT shape mismatch")
	}
	Zero(dst)
	for i := 0; i < m.Rows; i++ {
		Axpy(x[i], m.Row(i), dst)
	}
}
