package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDot(t *testing.T) {
	tests := []struct {
		name string
		a, b []float64
		want float64
	}{
		{"empty", nil, nil, 0},
		{"units", []float64{1, 0}, []float64{0, 1}, 0},
		{"basic", []float64{1, 2, 3}, []float64{4, 5, 6}, 32},
		{"negative", []float64{-1, 2}, []float64{3, -4}, -11},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Dot(tt.a, tt.b); !almostEq(got, tt.want, 1e-12) {
				t.Errorf("Dot(%v,%v) = %v, want %v", tt.a, tt.b, got, tt.want)
			}
		})
	}
}

func TestDotPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestAxpy(t *testing.T) {
	dst := []float64{1, 2, 3}
	Axpy(2, []float64{1, 1, 1}, dst)
	want := []float64{3, 4, 5}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Axpy result %v, want %v", dst, want)
		}
	}
}

func TestLerpEndpoints(t *testing.T) {
	dst := []float64{10, 20}
	x := []float64{2, 4}
	Lerp(1, dst, x) // beta=1 keeps dst
	if dst[0] != 10 || dst[1] != 20 {
		t.Fatalf("Lerp beta=1 modified dst: %v", dst)
	}
	Lerp(0, dst, x) // beta=0 copies x
	if dst[0] != 2 || dst[1] != 4 {
		t.Fatalf("Lerp beta=0 did not copy x: %v", dst)
	}
}

func TestLerpMidpoint(t *testing.T) {
	dst := []float64{0}
	Lerp(0.5, dst, []float64{10})
	if !almostEq(dst[0], 5, 1e-12) {
		t.Fatalf("Lerp midpoint = %v, want 5", dst[0])
	}
}

func TestClipL2(t *testing.T) {
	x := []float64{3, 4} // norm 5
	f := ClipL2(x, 2.5)
	if !almostEq(f, 0.5, 1e-12) {
		t.Fatalf("clip factor = %v, want 0.5", f)
	}
	if !almostEq(L2Norm(x), 2.5, 1e-12) {
		t.Fatalf("post-clip norm = %v, want 2.5", L2Norm(x))
	}
	// No clipping when already inside the ball.
	y := []float64{0.1, 0.1}
	if f := ClipL2(y, 10); f != 1 {
		t.Fatalf("unnecessary clip factor %v", f)
	}
	// Non-positive c is a no-op.
	z := []float64{100}
	if f := ClipL2(z, 0); f != 1 || z[0] != 100 {
		t.Fatalf("ClipL2 with c=0 modified input")
	}
}

func TestClipL2Property(t *testing.T) {
	// Property: after clipping, the norm never exceeds c (up to fp error).
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		x := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 1
			}
			x[i] = math.Mod(v, 1e6)
		}
		const c = 3.0
		ClipL2(x, c)
		return L2Norm(x) <= c*(1+1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSigmoid(t *testing.T) {
	tests := []struct {
		x, want float64
	}{
		{0, 0.5},
		{100, 1},
		{-100, 0},
	}
	for _, tt := range tests {
		if got := Sigmoid(tt.x); !almostEq(got, tt.want, 1e-9) {
			t.Errorf("Sigmoid(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestSigmoidSymmetryProperty(t *testing.T) {
	// sigmoid(x) + sigmoid(-x) == 1 for all finite x.
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		return almostEq(Sigmoid(x)+Sigmoid(-x), 1, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLogSigmoidConsistency(t *testing.T) {
	for _, x := range []float64{-30, -1, 0, 1, 30} {
		want := math.Log(Sigmoid(x))
		if got := LogSigmoid(x); !almostEq(got, want, 1e-9) {
			t.Errorf("LogSigmoid(%v) = %v, want %v", x, got, want)
		}
	}
	// Must not be -Inf even for very negative inputs.
	if v := LogSigmoid(-1000); math.IsInf(v, -1) {
		t.Error("LogSigmoid(-1000) overflowed to -Inf")
	}
}

func TestSoftmax(t *testing.T) {
	x := []float64{1, 2, 3}
	Softmax(x)
	if !almostEq(Sum(x), 1, 1e-12) {
		t.Fatalf("softmax does not sum to 1: %v", Sum(x))
	}
	if !(x[2] > x[1] && x[1] > x[0]) {
		t.Fatalf("softmax not monotone: %v", x)
	}
	// Large inputs must not overflow.
	y := []float64{1000, 1000}
	Softmax(y)
	if !almostEq(y[0], 0.5, 1e-12) || !almostEq(y[1], 0.5, 1e-12) {
		t.Fatalf("softmax unstable for large inputs: %v", y)
	}
}

func TestReLU(t *testing.T) {
	x := []float64{-1, 0, 2}
	dst := make([]float64, 3)
	ReLU(x, dst)
	want := []float64{0, 0, 2}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("ReLU = %v, want %v", dst, want)
		}
	}
}

func TestSqDist(t *testing.T) {
	if got := SqDist([]float64{0, 0}, []float64{3, 4}); !almostEq(got, 25, 1e-12) {
		t.Fatalf("SqDist = %v, want 25", got)
	}
}

func TestHadamard(t *testing.T) {
	dst := make([]float64, 2)
	Hadamard([]float64{2, 3}, []float64{4, 5}, dst)
	if dst[0] != 8 || dst[1] != 15 {
		t.Fatalf("Hadamard = %v", dst)
	}
}

func TestMeanEmpty(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Fatalf("Mean(nil) = %v, want 0", got)
	}
}

// The three kernels below replaced handwritten loops in model/fed hot
// paths under the mathxseam lint seam. The golden experiment hashes
// are tolerance-0, so each test demands bit identity (==, not almostEq)
// against the exact naive loop the kernel displaced, across lengths
// that exercise the unrolled body and every remainder lane.

func seamVec(n int, seed uint64) []float64 {
	r := NewRand(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = r.NormFloat64()
	}
	return v
}

func TestDot3BitIdentical(t *testing.T) {
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 31, 64, 129} {
		a, b, c := seamVec(n, 1), seamVec(n, 2), seamVec(n, 3)
		var want float64
		for i := 0; i < n; i++ {
			want += a[i] * b[i] * c[i]
		}
		if got := Dot3(a, b, c); got != want {
			t.Fatalf("n=%d: Dot3 = %x, naive loop = %x", n, got, want)
		}
	}
}

func TestAxpyDiffBitIdentical(t *testing.T) {
	const alpha = 0.37281
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 31, 64, 129} {
		x, y := seamVec(n, 4), seamVec(n, 5)
		got := seamVec(n, 6)
		want := append([]float64(nil), got...)
		for i := 0; i < n; i++ {
			want[i] += alpha * (x[i] - y[i])
		}
		AxpyDiff(alpha, x, y, got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d i=%d: AxpyDiff = %x, naive loop = %x", n, i, got[i], want[i])
			}
		}
	}
}

func TestDriftTowardBitIdentical(t *testing.T) {
	const c = 0.0123
	for _, n := range []int{0, 1, 2, 3, 4, 5, 7, 8, 31, 64, 129} {
		ref := seamVec(n, 7)
		got := seamVec(n, 8)
		want := append([]float64(nil), got...)
		for i := 0; i < n; i++ {
			want[i] -= c * (want[i] - ref[i])
		}
		DriftToward(c, ref, got)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("n=%d i=%d: DriftToward = %x, naive loop = %x", n, i, got[i], want[i])
			}
		}
	}
}

func TestDot3PanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	Dot3([]float64{1}, []float64{1, 2}, []float64{1})
}
