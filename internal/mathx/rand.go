package mathx

import (
	"math"
	"math/rand/v2"
)

// NewRand returns a deterministic PCG-backed generator for the given
// seed. Every stochastic component in the repository threads one of
// these explicitly — there is no package-level RNG — so runs are
// reproducible and tests can pin seeds.
func NewRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// Split derives an independent child generator from r. It is used to
// give each simulated client its own stream so that per-client
// randomness does not depend on client iteration order.
func Split(r *rand.Rand) *rand.Rand {
	return rand.New(rand.NewPCG(r.Uint64(), r.Uint64()))
}

// mix64 is the SplitMix64 finalizer (Steele et al., "Fast Splittable
// Pseudorandom Number Generators"): a bijective avalanche hash whose
// outputs over counter inputs pass BigCrush. It is the key-derivation
// primitive behind StreamSeeds.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// StreamSeeds derives a PCG seed pair for the substream of seed
// labelled by ids — counter-based stream derivation in the Philox
// spirit: the stream for (seed, id₀, id₁, …) is a pure function of the
// labels, independent of how many draws any other stream has consumed
// and of the order streams are created in.
//
// The evaluation engine keys utility sweeps by (seed, round, user) so a
// round's negative samples never depend on evaluation history (see
// model.EvalOptions).
func StreamSeeds(seed uint64, ids ...uint64) (lo, hi uint64) {
	h := mix64(seed ^ 0x2545f4914f6cdd1d)
	for _, id := range ids {
		h = mix64(h ^ mix64(id+0x9e3779b97f4a7c15))
	}
	return h, mix64(h ^ 0x6a09e667f3bcc909)
}

// NewStreamRand returns a generator positioned at the start of the
// (seed, ids...) substream (see StreamSeeds). Hot loops that reseed per
// item should instead hold a rand.PCG and call Seed with StreamSeeds to
// stay allocation-free.
func NewStreamRand(seed uint64, ids ...uint64) *rand.Rand {
	lo, hi := StreamSeeds(seed, ids...)
	return rand.New(rand.NewPCG(lo, hi))
}

// Normal returns a draw from N(mean, stddev²).
func Normal(r *rand.Rand, mean, stddev float64) float64 {
	return mean + stddev*r.NormFloat64()
}

// FillNormal fills x with independent N(mean, stddev²) draws.
func FillNormal(r *rand.Rand, x []float64, mean, stddev float64) {
	for i := range x {
		x[i] = Normal(r, mean, stddev)
	}
}

// Exponential returns a draw from Exp(rate); its mean is 1/rate.
// It panics if rate <= 0.
func Exponential(r *rand.Rand, rate float64) float64 {
	if rate <= 0 {
		panic("mathx: Exponential requires rate > 0")
	}
	return r.ExpFloat64() / rate
}

// Zipf draws from a Zipf distribution over {0, ..., n-1} with exponent
// s (s=0 degenerates to uniform). Popularity-skewed item catalogues in
// the synthetic datasets use this. The implementation inverts the CDF
// with a cached table owned by the caller via NewZipfTable.
type ZipfTable struct {
	cdf []float64
}

// NewZipfTable precomputes the CDF of a Zipf(s) law over n outcomes.
// It panics if n <= 0 or s < 0.
func NewZipfTable(n int, s float64) *ZipfTable {
	if n <= 0 {
		panic("mathx: NewZipfTable requires n > 0")
	}
	if s < 0 {
		panic("mathx: NewZipfTable requires s >= 0")
	}
	cdf := make([]float64, n)
	var acc float64
	for k := 0; k < n; k++ {
		acc += 1 / math.Pow(float64(k+1), s)
		cdf[k] = acc
	}
	for k := range cdf {
		cdf[k] /= acc
	}
	return &ZipfTable{cdf: cdf}
}

// N returns the number of outcomes.
func (z *ZipfTable) N() int { return len(z.cdf) }

// Draw samples one outcome in [0, N).
func (z *ZipfTable) Draw(r *rand.Rand) int {
	u := r.Float64()
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Perm returns a random permutation of [0, n) using r.
func Perm(r *rand.Rand, n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	Shuffle(r, p)
	return p
}

// Shuffle permutes s in place (Fisher–Yates).
func Shuffle(r *rand.Rand, s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.IntN(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// SampleWithoutReplacement returns k distinct values drawn uniformly
// from [0, n). It panics if k > n or either argument is negative.
// For small k relative to n it uses rejection; otherwise a partial
// Fisher–Yates pass, keeping both paths O(k) expected.
func SampleWithoutReplacement(r *rand.Rand, n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic("mathx: SampleWithoutReplacement requires 0 <= k <= n")
	}
	if k == 0 {
		return nil
	}
	if k*8 < n {
		seen := make(map[int]struct{}, k)
		out := make([]int, 0, k)
		for len(out) < k {
			v := r.IntN(n)
			if _, dup := seen[v]; dup {
				continue
			}
			seen[v] = struct{}{}
			out = append(out, v)
		}
		return out
	}
	p := Perm(r, n)
	return p[:k]
}

// WeightedChoice draws an index proportionally to weights[i]. Negative
// weights panic; an all-zero weight vector falls back to uniform.
func WeightedChoice(r *rand.Rand, weights []float64) int {
	if len(weights) == 0 {
		panic("mathx: WeightedChoice on empty weights")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("mathx: WeightedChoice negative weight")
		}
		total += w
	}
	if total == 0 {
		return r.IntN(len(weights))
	}
	u := r.Float64() * total
	var acc float64
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Bernoulli returns true with probability p.
func Bernoulli(r *rand.Rand, p float64) bool {
	return r.Float64() < p
}
