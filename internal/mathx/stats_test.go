package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestArgsortDesc(t *testing.T) {
	got := ArgsortDesc([]float64{1, 3, 2})
	want := []int{1, 2, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ArgsortDesc = %v, want %v", got, want)
		}
	}
}

func TestArgsortDescStableTies(t *testing.T) {
	got := ArgsortDesc([]float64{5, 5, 5})
	want := []int{0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ties must preserve index order: %v", got)
		}
	}
}

func TestTopK(t *testing.T) {
	x := []float64{0.1, 0.9, 0.5, 0.7}
	got := TopK(x, 2)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("TopK = %v, want [1 3]", got)
	}
	if got := TopK(x, 10); len(got) != 4 {
		t.Fatalf("TopK must clamp k: got %d", len(got))
	}
	if got := TopK(x, 0); got != nil {
		t.Fatalf("TopK(0) = %v, want nil", got)
	}
}

func TestQuantile(t *testing.T) {
	x := []float64{4, 1, 3, 2}
	tests := []struct {
		q, want float64
	}{
		{0, 1}, {1, 4}, {0.5, 2.5},
	}
	for _, tt := range tests {
		if got := Quantile(x, tt.q); !almostEq(got, tt.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	// Input must not be mutated.
	if x[0] != 4 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestQuantileSorted(t *testing.T) {
	// Property: Quantile is monotone in q.
	f := func(raw []float64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		x := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			x[i] = v
		}
		a := math.Abs(math.Mod(q1, 1))
		b := math.Abs(math.Mod(q2, 1))
		if a > b {
			a, b = b, a
		}
		return Quantile(x, a) <= Quantile(x, b)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMinMax(t *testing.T) {
	x := []float64{3, -1, 7}
	if Max(x) != 7 || Min(x) != -1 {
		t.Fatalf("Max/Min = %v/%v", Max(x), Min(x))
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]float64{1, 0}); got != 0 {
		t.Fatalf("deterministic entropy = %v, want 0", got)
	}
	if got := Entropy([]float64{0.5, 0.5}); !almostEq(got, math.Ln2, 1e-12) {
		t.Fatalf("fair-coin entropy = %v, want ln2", got)
	}
}

func TestBinaryEntropy(t *testing.T) {
	if got := BinaryEntropy(0.5); !almostEq(got, math.Ln2, 1e-12) {
		t.Fatalf("BinaryEntropy(0.5) = %v, want ln2", got)
	}
	// Boundary values must stay finite.
	for _, p := range []float64{0, 1} {
		if v := BinaryEntropy(p); math.IsInf(v, 0) || math.IsNaN(v) {
			t.Fatalf("BinaryEntropy(%v) not finite: %v", p, v)
		}
	}
	// Symmetry property.
	f := func(p float64) bool {
		p = math.Abs(math.Mod(p, 1))
		return almostEq(BinaryEntropy(p), BinaryEntropy(1-p), 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestJaccardInt(t *testing.T) {
	set := func(vs ...int) map[int]struct{} {
		m := make(map[int]struct{}, len(vs))
		for _, v := range vs {
			m[v] = struct{}{}
		}
		return m
	}
	tests := []struct {
		name string
		a, b map[int]struct{}
		want float64
	}{
		{"both empty", set(), set(), 0},
		{"identical", set(1, 2), set(1, 2), 1},
		{"disjoint", set(1), set(2), 0},
		{"half", set(1, 2), set(2, 3), 1.0 / 3.0},
		{"subset", set(1), set(1, 2, 3, 4), 0.25},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := JaccardInt(tt.a, tt.b); !almostEq(got, tt.want, 1e-12) {
				t.Errorf("Jaccard = %v, want %v", got, tt.want)
			}
			// Symmetry.
			if got := JaccardInt(tt.b, tt.a); !almostEq(got, tt.want, 1e-12) {
				t.Errorf("Jaccard not symmetric")
			}
		})
	}
}

// TopKSelect must reproduce TopK's exact order (decreasing value,
// ascending-index ties) without allocating; since the heap rewrite it
// must also leave its input untouched.
func TestTopKSelectMatchesTopK(t *testing.T) {
	r := NewRand(77)
	for trial := 0; trial < 50; trial++ {
		n := 1 + r.IntN(40)
		x := make([]float64, n)
		for i := range x {
			// Coarse values force plenty of ties.
			x[i] = float64(r.IntN(6))
		}
		for _, k := range []int{0, 1, 3, n, n + 5} {
			want := TopK(x, k)
			input := append([]float64(nil), x...)
			got := TopKSelect(input, k, make([]int, 0, n))
			for i := range input {
				if input[i] != x[i] {
					t.Fatalf("n=%d k=%d: TopKSelect mutated input at %d", n, k, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("n=%d k=%d: len %d != %d", n, k, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("n=%d k=%d: index %d: %d != %d (x=%v)", n, k, i, got[i], want[i], x)
				}
			}
		}
	}
}
