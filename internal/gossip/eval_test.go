package gossip

import (
	"testing"
)

// Utility curves must be byte-identical across worker counts: every
// node's value comes from its own model and its own (seed, round, node)
// negative-sampling stream, and the reduce runs in node order.
func TestUtilityCurveWorkersInvariance(t *testing.T) {
	d := gossipTestDataset(t)
	curves := func(workers int) (hr, f1 []float64) {
		cfg := gossipConfig(d)
		cfg.Workers = workers
		cfg.OnRound = func(round int, s *Simulation) {
			hr = append(hr, s.UtilityHR(10, 20))
			f1 = append(f1, s.UtilityF1(10))
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		return hr, f1
	}
	hr1, f11 := curves(1)
	hr4, f14 := curves(4)
	for r := range hr1 {
		if hr1[r] != hr4[r] {
			t.Fatalf("round %d: HR differs across workers: %v != %v", r, hr1[r], hr4[r])
		}
		if f11[r] != f14[r] {
			t.Fatalf("round %d: F1 differs across workers: %v != %v", r, f11[r], f14[r])
		}
	}
}

// Regression for the shared-evalRng bug, gossip side: the final round's
// utility must be the same whether or not earlier rounds were
// evaluated.
func TestUtilityIndependentOfEvalCadence(t *testing.T) {
	d := gossipTestDataset(t)

	var everyRound []float64
	cfg := gossipConfig(d)
	cfg.OnRound = func(round int, s *Simulation) {
		everyRound = append(everyRound, s.UtilityHR(10, 20))
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()

	s2, err := New(gossipConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	s2.Run()
	lastOnly := s2.UtilityHR(10, 20)

	if got := everyRound[len(everyRound)-1]; got != lastOnly {
		t.Fatalf("final-round utility depends on evaluation cadence: %v != %v", got, lastOnly)
	}
}
