package gossip

import (
	"github.com/collablearn/ciarec/internal/obs"
	"github.com/collablearn/ciarec/internal/transport"
)

// RegisterMetrics installs live views of the simulation's counters
// into reg: the transport's transport_* traffic counters, the
// resilience_* fault accounting (same keys as Resilience.String with
// dashes underscored), the parameter pool's hit/miss counts and —
// when the simulation is traced — the tracer's span volume. The
// registry only ever reads; the simulation stays the owner of every
// counter. No-op on a nil registry.
func (s *Simulation) RegisterMetrics(reg *obs.Registry) {
	if reg == nil {
		return
	}
	transport.RegisterStats(reg, s.tr)
	res := func(get func(Resilience) int64) func() float64 {
		return func() float64 { return float64(get(s.Resilience())) }
	}
	reg.RegisterFunc("resilience_lost_pushes", res(func(r Resilience) int64 { return r.LostPushes }))
	reg.RegisterFunc("resilience_skipped_peers", res(func(r Resilience) int64 { return r.SkippedPeers }))
	reg.RegisterFunc("resilience_absent_skips", res(func(r Resilience) int64 { return r.AbsentSkips }))
	reg.RegisterFunc("resilience_joins", res(func(r Resilience) int64 { return r.Joins }))
	reg.RegisterFunc("resilience_leaves", res(func(r Resilience) int64 { return r.Leaves }))
	reg.RegisterFunc("resilience_rejoins", res(func(r Resilience) int64 { return r.Rejoins }))
	reg.RegisterFunc("resilience_stale_resets", res(func(r Resilience) int64 { return r.StaleResets }))
	reg.RegisterFunc("resilience_byzantine_pushes", res(func(r Resilience) int64 { return r.ByzantinePushes }))
	reg.RegisterFunc("param_pool_hits_total", func() float64 {
		h, _ := s.pool.Stats()
		return float64(h)
	})
	reg.RegisterFunc("param_pool_misses_total", func() float64 {
		_, m := s.pool.Stats()
		return float64(m)
	})
	reg.RegisterTracer(s.cfg.Tracer)
}
