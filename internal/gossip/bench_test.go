package gossip

import (
	"fmt"
	"testing"

	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/model"
)

// benchSim builds a bench-scale gossip network (the Table III
// MovieLens sizing) with the given worker count.
func benchSim(b *testing.B, workers int) *Simulation {
	b.Helper()
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		Name: "bench", NumUsers: 140, NumItems: 260,
		NumCommunities: 4, MeanItemsPerUser: 40, MinItemsPerUser: 10,
		Affinity: 0.85, ZipfExponent: 0.9, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	d.SplitLeaveOneOut(3)
	s, err := New(Config{
		Dataset: d,
		Factory: model.NewGMFFactory(d.NumUsers, d.NumItems, 8),
		Rounds:  1 << 30, // benchmarks drive RunRound directly
		Train:   model.TrainOptions{Epochs: 2},
		Workers: workers,
		Seed:    1,
	})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

// BenchmarkGossipCycle measures one full gossip round — 140 nodes
// casting, aggregating their inbox in place and training locally — at
// several worker counts, with allocs/op tracking the recycled payload
// pipeline.
func BenchmarkGossipCycle(b *testing.B) {
	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			s := benchSim(b, workers)
			s.RunRound() // warm the payload pool
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.RunRound()
			}
		})
	}
}
