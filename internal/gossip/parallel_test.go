package gossip

import (
	"testing"

	"github.com/collablearn/ciarec/internal/defense"
	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/param"
)

// finalParams runs a fresh simulation from cfg with the given worker
// count and returns every node's final parameter set.
func finalParams(t *testing.T, cfg Config, workers int) (*Simulation, []*param.Set) {
	t.Helper()
	cfg.Workers = workers
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	out := make([]*param.Set, len(s.nodes))
	for u := range s.nodes {
		out[u] = s.nodes[u].m.Params().Clone()
	}
	return s, out
}

// Workers=1 and Workers=N must produce byte-identical node models
// across variants, defenses and failure injection: every node owns its
// RNG stream and delivery happens sequentially between the parallel
// phases.
func TestSerialParallelEquivalence(t *testing.T) {
	d := gossipTestDataset(t)
	cases := map[string]func(*Config){
		"rand-gossip":  func(c *Config) {},
		"pers-gossip":  func(c *Config) { c.Variant = PersGossip },
		"share-less":   func(c *Config) { c.Policy = defense.ShareLess{Tau: 1} },
		"dp-sgd":       func(c *Config) { c.Policy = defense.DPSGD{Clip: 2, NoiseMultiplier: 0.05} },
		"lossy-sparse": func(c *Config) { c.LossProb = 0.2; c.WakeProb = 0.5 },
		// NeuMF scores its forward pass through model-owned scratch;
		// with Pers-Gossip this exercises the cross-node Relevance
		// calls of view refresh, which must not run concurrently.
		"pers-neumf": func(c *Config) {
			c.Variant = PersGossip
			c.Factory = model.NewNeuMFFactory(c.Dataset.NumUsers, c.Dataset.NumItems, 8)
		},
	}
	for name, mutate := range cases {
		t.Run(name, func(t *testing.T) {
			cfg := gossipConfig(d)
			mutate(&cfg)
			serialSim, serial := finalParams(t, cfg, 1)
			parallelSim, parallel := finalParams(t, cfg, 4)
			for u := range serial {
				if !param.Equal(serial[u], parallel[u], 0) {
					t.Fatalf("node %d params differ between Workers=1 and Workers=4", u)
				}
			}
			if serialSim.Traffic() != parallelSim.Traffic() {
				t.Fatalf("traffic differs: %+v vs %+v", serialSim.Traffic(), parallelSim.Traffic())
			}
		})
	}
}

// The adversary's observation stream (sender, receiver, payload) must
// not depend on the worker count.
func TestParallelObserverSequence(t *testing.T) {
	d := gossipTestDataset(t)
	type seen struct {
		round, from, to int
		norm            float64
	}
	record := func(workers int) []seen {
		var log []seen
		cfg := gossipConfig(d)
		cfg.Workers = workers
		cfg.Observer = observerFunc2(func(msg Message) {
			log = append(log, seen{msg.Round, msg.From, msg.To, msg.Params.L2Norm()})
		})
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		return log
	}
	serial := record(1)
	parallel := record(4)
	if len(serial) != len(parallel) {
		t.Fatalf("observation count differs: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("observation %d differs: %+v vs %+v", i, serial[i], parallel[i])
		}
	}
}

// Re-running the same seeded configuration must reproduce identical
// models — covers the deterministic candidate ordering in persView
// (map iteration order must not leak into peer selection).
func TestPersGossipReproducible(t *testing.T) {
	d := gossipTestDataset(t)
	cfg := gossipConfig(d)
	cfg.Variant = PersGossip
	cfg.Rounds = 8
	_, a := finalParams(t, cfg, 2)
	_, b := finalParams(t, cfg, 2)
	for u := range a {
		if !param.Equal(a[u], b[u], 0) {
			t.Fatalf("node %d params differ across identical runs", u)
		}
	}
}
