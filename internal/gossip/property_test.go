package gossip

import (
	"fmt"
	"testing"
)

// checkView asserts the structural invariants every peer-sampling view
// must satisfy: exactly p peers, never the owner, no duplicates, all
// in range.
func checkView(t *testing.T, owner int, view []int, n, p int, ctx string) {
	t.Helper()
	if len(view) != p {
		t.Fatalf("%s: node %d view has %d peers, want %d", ctx, owner, len(view), p)
	}
	seen := make(map[int]struct{}, len(view))
	for _, v := range view {
		if v < 0 || v >= n {
			t.Fatalf("%s: node %d view contains out-of-range peer %d", ctx, owner, v)
		}
		if v == owner {
			t.Fatalf("%s: node %d view contains itself", ctx, owner)
		}
		if _, dup := seen[v]; dup {
			t.Fatalf("%s: node %d view contains duplicate peer %d (view %v)", ctx, owner, v, view)
		}
		seen[v] = struct{}{}
	}
}

// Property: randView and persView always produce P-out-regular views
// that exclude the owner and contain no duplicates, across hundreds of
// direct refreshes at several out-degrees.
func TestViewRefreshProperties(t *testing.T) {
	d := gossipTestDataset(t)
	for _, variant := range []Variant{RandGossip, PersGossip} {
		for _, p := range []int{1, 3, 7} {
			t.Run(fmt.Sprintf("%s/P=%d", variant, p), func(t *testing.T) {
				cfg := gossipConfig(d)
				cfg.Variant = variant
				cfg.OutDegree = p
				s, err := New(cfg)
				if err != nil {
					t.Fatal(err)
				}
				n := d.NumUsers
				for trial := 0; trial < 50; trial++ {
					for u := range s.nodes {
						s.refreshView(u)
						checkView(t, u, s.nodes[u].view, n, p, fmt.Sprintf("refresh %d", trial))
					}
				}
			})
		}
	}
}

// Property: the invariants hold across full protocol rounds too, where
// refreshes interleave with training (Pers-Gossip scoring then ranks
// live, drifting models) and the Exp(rate) refresh schedule fires at
// node-specific times. A high refresh rate makes nearly every node
// refresh every round.
func TestViewInvariantsAcrossRounds(t *testing.T) {
	d := gossipTestDataset(t)
	for _, variant := range []Variant{RandGossip, PersGossip} {
		t.Run(variant.String(), func(t *testing.T) {
			cfg := gossipConfig(d)
			cfg.Variant = variant
			cfg.Rounds = 12
			cfg.ViewRefreshRate = 1 // mean refresh interval: 1 round
			s, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < cfg.Rounds; r++ {
				s.RunRound()
				for u := range s.nodes {
					// s.cfg, not cfg: New applies the default OutDegree (3).
					checkView(t, u, s.nodes[u].view, d.NumUsers, s.cfg.OutDegree, fmt.Sprintf("round %d", r))
				}
			}
		})
	}
}

// Property: Pers-Gossip view refreshing is insensitive to candidate
// iteration order — repeated refreshes from identical RNG state pick
// identical views (the candidate pool is a map; its order must not
// leak into selection).
func TestPersViewDeterministicGivenState(t *testing.T) {
	d := gossipTestDataset(t)
	cfg := gossipConfig(d)
	cfg.Variant = PersGossip
	build := func() [][]int {
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		views := make([][]int, d.NumUsers)
		for u := range s.nodes {
			s.refreshView(u)
			views[u] = append([]int(nil), s.nodes[u].view...)
		}
		return views
	}
	a, b := build(), build()
	for u := range a {
		for i := range a[u] {
			if a[u][i] != b[u][i] {
				t.Fatalf("node %d view differs across identical builds: %v vs %v", u, a[u], b[u])
			}
		}
	}
}
