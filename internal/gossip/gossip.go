// Package gossip simulates Gossip-Learning recommender systems
// (§III-C): every user keeps a local model and exchanges it with
// neighbours over a dynamic directed communication graph.
//
// Two protocol variants from the paper are implemented:
//
//   - Rand-Gossip (Hegedűs et al.): uniform random peer sampling;
//   - Pers-Gossip (Pepper, Belal et al.): performance-aware peer
//     sampling with an exploration ratio.
//
// The simulation is round-based: at each round every awake node pushes
// its (policy-filtered) model to one sampled out-neighbour; nodes then
// aggregate their inbox with uniform weights and run local training
// steps — the (1) cast, (2) aggregate, (3) train sequence of §III-C.
// Views are P-out-regular and refresh at Exp(rate)-distributed
// intervals through a random peer-sampling service, matching the
// paper's experimental setup (P = 3, p ~ Exp(0.1)).
package gossip

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strings"
	"sync/atomic"

	"github.com/collablearn/ciarec/internal/attack"
	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/defense"
	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/obs"
	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/parx"
	"github.com/collablearn/ciarec/internal/transport"
)

// Variant selects the peer-sampling behaviour.
type Variant int

const (
	// RandGossip samples views uniformly at random.
	RandGossip Variant = iota + 1
	// PersGossip biases views towards peers whose models perform well
	// on the local data, with an exploration ratio.
	PersGossip
)

func (v Variant) String() string {
	switch v {
	case RandGossip:
		return "rand-gossip"
	case PersGossip:
		return "pers-gossip"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Message is one model transfer as seen by the receiving node (and
// therefore by an adversary controlling that node).
type Message struct {
	Round    int
	From, To int
	Params   *param.Set
}

// Observer receives every delivered message; adversary implementations
// filter on To (the node(s) they control). msg.Params is only valid
// until the receiving node aggregates its inbox later the same round:
// the simulator recycles payload storage afterwards, so
// implementations must clone anything they retain. Calls are always
// made sequentially from a single goroutine, in ascending sender order
// within a round.
type Observer interface {
	OnReceive(msg Message)
	OnRoundEnd(round int)
}

// Config parameterizes a gossip simulation.
type Config struct {
	Dataset *dataset.Dataset
	Factory model.Factory
	// Policy defaults to defense.FullSharing.
	Policy defense.Policy
	// Variant defaults to RandGossip.
	Variant Variant

	// Rounds is the number of gossip rounds (required, > 0).
	Rounds int
	// OutDegree is P, the out-view size (default 3, as in the paper).
	OutDegree int
	// ViewRefreshRate is the rate of the exponential law governing
	// per-node view refresh intervals (default 0.1 ⇒ mean 10 rounds).
	ViewRefreshRate float64
	// ExplorationRatio is the Pers-Gossip exploration probability
	// (default 0.4, as in the paper).
	ExplorationRatio float64
	// WakeProb is the per-round probability that a node wakes and
	// pushes its model (default 1).
	WakeProb float64
	// StaticGraph disables view refreshing entirely — the ablation for
	// the claim that gossip's privacy stems from its dynamics.
	StaticGraph bool
	// LossProb is the probability that a pushed model is lost in
	// transit (never delivered, never observed). Failure injection for
	// the decentralized setting.
	LossProb float64
	// FaultPlan is the declarative failure scenario the simulator
	// consults for the one decision the transport cannot make: whether
	// a push's chosen receiver is unreachable this round (the push is
	// skipped; the sender's view is left intact, so an outage never
	// corrupts the peer-sampling state). Transit loss itself flows
	// through the transport — wrap it in transport.NewFaulty with the
	// same plan and Send errors count as lost pushes. nil disables
	// both checks.
	FaultPlan *transport.FaultPlan

	// ChurnPlan drives deterministic node churn: each round, present
	// nodes leave and absent ones (re)join as pure functions of (plan
	// seed, round, node) — no simulator RNG consumed. An absent node is
	// frozen completely: no view refresh, no wake, no training, no
	// receiving (senders skip absent receivers, counted in
	// Resilience.AbsentSkips), so its model, view and RNG are exactly
	// as it left them. A rejoiner resumes from that stale state under
	// the staleness-bounded merge rule: if it missed more than
	// ChurnPlan.StaleBound rounds and receives at least one push that
	// round, its own model is too stale to vote — the inbox average
	// replaces it outright (counted in Resilience.StaleResets) instead
	// of diluting fresh neighbour state with stale parameters. Within
	// the bound it merges normally (uniform {own} ∪ inbox average).
	ChurnPlan *transport.ChurnPlan
	// Byzantine, when non-nil with Fraction > 0, makes a deterministic
	// subset of nodes corrupt every push they send (see
	// attack.Byzantine; the collusion echo resends the node's
	// post-aggregation state, carrying no local training signal).
	Byzantine *attack.Byzantine

	// Train is the local-training option template; Rand is ignored.
	Train model.TrainOptions

	// Transport carries the node→neighbour model pushes. nil defaults
	// to a fresh transport.Inproc (pointer passing); transport.NewWire()
	// round-trips every push through the binary wire codec and the
	// socket backends (transport.New("socket") / transport.Dial) push
	// it over a real RPC socket, all with byte-identical results
	// (enforced by the cross-backend equivalence suite). The caller
	// keeps ownership: the simulation never closes the transport.
	// Instances accumulate per-simulation traffic stats, so do not
	// share one across simulations.
	Transport transport.Transport

	// Compression selects the transport payload codec: the zero value
	// keeps the dense float64 codec (bit-exact pushes, the golden
	// reference), 8 or 16 bits switches every push to the
	// sparse+quantized CPQ1 codec — coded absolute, as gossip has no
	// broadcast to delta against. When Transport is nil the default
	// inproc transport is built at this level; a non-nil Transport must
	// either match or this field must be zero, in which case the
	// transport's setting is adopted.
	Compression param.Compression

	// Workers bounds the number of goroutines running per-node work
	// (view refresh, payload construction, inbox aggregation, local
	// training) and the UtilityHR/UtilityF1 sweeps concurrently. 0
	// defaults to runtime.NumCPU(); negative forces serial execution.
	// Results are byte-identical whatever the worker count: every node
	// owns its RNG stream, message delivery plus observer callbacks
	// happen sequentially in node order between the parallel phases,
	// and utility evaluation derives one counter-based stream per
	// (seed, round, node).
	Workers int

	// Tracer optionally records phase spans (encode/send/aggregate/
	// train/eval) for every round. nil disables tracing; results are
	// byte-identical either way — the tracer is write-only from the
	// simulation's point of view (the obsleak analyzer enforces it).
	Tracer *obs.Tracer

	Observer Observer
	OnRound  func(round int, s *Simulation)

	Seed uint64
}

func (c *Config) validate() error {
	if c.Dataset == nil {
		return fmt.Errorf("gossip: Config.Dataset is required")
	}
	if c.Factory == nil {
		return fmt.Errorf("gossip: Config.Factory is required")
	}
	if c.Rounds <= 0 {
		return fmt.Errorf("gossip: Config.Rounds must be positive, got %d", c.Rounds)
	}
	if c.OutDegree < 0 || c.OutDegree >= c.Dataset.NumUsers {
		return fmt.Errorf("gossip: OutDegree %d out of [0, numUsers)", c.OutDegree)
	}
	if c.WakeProb < 0 || c.WakeProb > 1 {
		return fmt.Errorf("gossip: WakeProb %v out of [0,1]", c.WakeProb)
	}
	if c.ExplorationRatio < 0 || c.ExplorationRatio > 1 {
		return fmt.Errorf("gossip: ExplorationRatio %v out of [0,1]", c.ExplorationRatio)
	}
	if c.LossProb < 0 || c.LossProb >= 1 {
		return fmt.Errorf("gossip: LossProb %v out of [0,1)", c.LossProb)
	}
	if err := c.Compression.Validate(); err != nil {
		return fmt.Errorf("gossip: %w", err)
	}
	if c.ChurnPlan != nil {
		if err := c.ChurnPlan.Validate(); err != nil {
			return fmt.Errorf("gossip: %w", err)
		}
	}
	if c.Byzantine != nil {
		if err := c.Byzantine.Validate(); err != nil {
			return fmt.Errorf("gossip: %w", err)
		}
	}
	if c.Transport != nil {
		if tc := c.Transport.Compression(); c.Compression.Enabled() && tc != c.Compression {
			return fmt.Errorf("gossip: Config.Compression %v conflicts with the transport's %v", c.Compression, tc)
		}
	}
	return nil
}

// node is one gossip participant.
type node struct {
	m           model.Recommender
	rng         *rand.Rand
	view        []int
	nextRefresh int
	inbox       []Message
	// preTrain snapshots the node's parameters after aggregation and
	// before local training: the GL drift reference e_{j,u}^{t-1} and
	// the DP delta baseline.
	preTrain *param.Set
	// probe is a fixed random item sample used by Pers-Gossip to
	// baseline candidate-model relevance (lazily initialized).
	probe []int
}

// Traffic is the delivered-message accounting, mirrored from the
// transport's point-to-point counters.
type Traffic struct {
	Messages int
	Bytes    int64
}

// Simulation is a running gossip system. Create with New, then call
// Run (or RunRound repeatedly).
type Simulation struct {
	cfg   Config
	nodes []node
	rng   *rand.Rand
	eval  *model.Eval
	round int
	tr    transport.Transport

	workers int
	pool    param.Buffers // payload free-list
	pushes  []push        // per-round staging, indexed by sender

	// Churn membership fold (nil when no ChurnPlan is active).
	membership *transport.Membership

	// Resilience accounting, incremented from worker goroutines.
	lostPushes      atomic.Int64
	skippedPeers    atomic.Int64
	absentSkips     atomic.Int64
	staleResets     atomic.Int64
	byzantinePushes atomic.Int64
}

// Resilience is the simulation's accumulated fault accounting.
type Resilience struct {
	// LostPushes counts pushes the transport failed to carry (injected
	// faults or an unreachable backend) — distinct from LossProb losses,
	// which never reach the transport.
	LostPushes int64
	// SkippedPeers counts pushes skipped because the chosen receiver
	// was unreachable under the FaultPlan.
	SkippedPeers int64
	// AbsentSkips counts pushes skipped because the chosen receiver
	// had left under the ChurnPlan (the sender keeps its view — peers
	// may rejoin).
	AbsentSkips int64
	// Joins, Leaves and Rejoins are the ChurnPlan membership
	// transitions (a rejoin is also counted as a join).
	Joins   int64
	Leaves  int64
	Rejoins int64
	// StaleResets counts rejoining nodes whose staleness exceeded
	// ChurnPlan.StaleBound and whose model was replaced by the inbox
	// average under the staleness-bounded merge rule.
	StaleResets int64
	// ByzantinePushes counts pushes corrupted by the Byzantine
	// adversary population before sending.
	ByzantinePushes int64
}

// Resilience returns the accumulated fault accounting.
func (s *Simulation) Resilience() Resilience {
	r := Resilience{
		LostPushes:      s.lostPushes.Load(),
		SkippedPeers:    s.skippedPeers.Load(),
		AbsentSkips:     s.absentSkips.Load(),
		StaleResets:     s.staleResets.Load(),
		ByzantinePushes: s.byzantinePushes.Load(),
	}
	if s.membership != nil {
		r.Joins = s.membership.Joins()
		r.Leaves = s.membership.Leaves()
		r.Rejoins = s.membership.Rejoins()
	}
	return r
}

// String renders the non-zero counters as space-separated key=value
// pairs in declaration order ("" when nothing happened), the form the
// experiment tables print per run.
func (r Resilience) String() string {
	var b strings.Builder
	add := func(key string, v int64) {
		if v == 0 {
			return
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", key, v)
	}
	add("lost-pushes", r.LostPushes)
	add("skipped-peers", r.SkippedPeers)
	add("absent-skips", r.AbsentSkips)
	add("joins", r.Joins)
	add("leaves", r.Leaves)
	add("rejoins", r.Rejoins)
	add("stale-resets", r.StaleResets)
	add("byzantine-pushes", r.ByzantinePushes)
	return b.String()
}

// push is one node's (possibly absent) outgoing transfer for the
// current round, computed in parallel and delivered sequentially.
type push struct {
	to      int // -1 when the node stays silent or the message is lost
	payload *param.Set
}

// Traffic returns the accumulated delivered-message statistics (the
// transport's point-to-point counters).
func (s *Simulation) Traffic() Traffic {
	st := s.tr.Stats()
	return Traffic{Messages: int(st.Messages), Bytes: st.Bytes}
}

// TransportStats returns the transport's full traffic accounting.
func (s *Simulation) TransportStats() transport.Stats { return s.tr.Stats() }

// New builds a gossip simulation from cfg. Defaults are applied before
// validation so that e.g. a 3-node network is rejected (the default
// out-degree P = 3 requires at least P+1 nodes) instead of panicking
// later.
func New(cfg Config) (*Simulation, error) {
	if cfg.Policy == nil {
		cfg.Policy = defense.FullSharing{}
	}
	if cfg.Variant == 0 {
		cfg.Variant = RandGossip
	}
	if cfg.OutDegree == 0 {
		cfg.OutDegree = 3
	}
	if cfg.ViewRefreshRate == 0 {
		cfg.ViewRefreshRate = 0.1
	}
	if cfg.ExplorationRatio == 0 {
		cfg.ExplorationRatio = 0.4
	}
	if cfg.WakeProb == 0 {
		cfg.WakeProb = 1
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Transport == nil {
		tr, err := transport.NewOptions("inproc", transport.Options{Compression: cfg.Compression})
		if err != nil {
			return nil, fmt.Errorf("gossip: %w", err)
		}
		cfg.Transport = tr
	} else {
		cfg.Compression = cfg.Transport.Compression()
	}
	rng := mathx.NewRand(cfg.Seed)
	n := cfg.Dataset.NumUsers
	s := &Simulation{
		cfg:     cfg,
		nodes:   make([]node, n),
		rng:     rng,
		tr:      cfg.Transport,
		workers: parx.Workers(cfg.Workers),
		pushes:  make([]push, n),
	}
	// The same eval seed constant as the historical shared evalRng, now
	// feeding per-(round, user) counter-derived streams.
	s.eval = model.NewEval(cfg.Dataset, s.workers, cfg.Seed^0xabcdef)
	for u := 0; u < n; u++ {
		m := cfg.Factory(rng.Uint64())
		if m.NumUsers() != n || m.NumItems() != cfg.Dataset.NumItems {
			return nil, fmt.Errorf("gossip: model shape %d/%d mismatches dataset %d/%d",
				m.NumUsers(), m.NumItems(), n, cfg.Dataset.NumItems)
		}
		s.nodes[u] = node{
			m:        m,
			rng:      mathx.Split(rng),
			preTrain: m.Params().Clone(),
		}
	}
	for u := range s.nodes {
		s.refreshView(u)
		s.scheduleRefresh(u)
	}
	// The membership fold consumes no simulator RNG, so building it (or
	// not) leaves every node stream above untouched.
	if cfg.ChurnPlan != nil && cfg.ChurnPlan.Enabled() {
		s.membership = transport.NewMembership(*cfg.ChurnPlan, n)
	}
	return s, nil
}

// Node returns node u's live model (do not mutate).
func (s *Simulation) Node(u int) model.Recommender { return s.nodes[u].m }

// View returns a copy of node u's current out-view.
func (s *Simulation) View(u int) []int {
	return append([]int(nil), s.nodes[u].view...)
}

// Round returns the number of completed rounds.
func (s *Simulation) Round() int { return s.round }

// Run executes all configured rounds.
func (s *Simulation) Run() {
	for s.round < s.cfg.Rounds {
		s.RunRound()
	}
}

// RunRound executes one gossip round.
//
// Per-node work (view refresh, payload construction, inbox
// aggregation, local training) fans out over the worker pool; message
// delivery and observer callbacks run sequentially in node order
// between the parallel phases. Every node owns its RNG, so the round
// is byte-identical for every Workers setting.
func (s *Simulation) RunRound() {
	round := s.round
	if s.membership != nil {
		// Apply the round's churn transitions first: the rest of the
		// round consults a fixed membership. Pure plan functions — no
		// simulator RNG consumed.
		s.membership.Advance(round)
	}

	// View maintenance via the peer-sampling service. This phase stays
	// sequential: Pers-Gossip scores candidate peers by calling
	// Relevance on *other* nodes' live models, and some model families
	// (NeuMF) run their forward pass through model-owned scratch, so
	// two concurrent refreshes scoring the same candidate would race.
	// Refreshes are Exp(rate)-sparse (~n/10 per round at the paper's
	// rate), so this costs little next to the training phases. Absent
	// nodes are frozen — an overdue refresh waits until they rejoin.
	if !s.cfg.StaticGraph {
		for u := range s.nodes {
			if s.membership != nil && !s.membership.Present(u) {
				continue
			}
			if s.nodes[u].nextRefresh <= round {
				s.refreshView(u)
				s.scheduleRefresh(u)
			}
		}
	}

	// Phase 1a: awake nodes build their outgoing payload and put it on
	// the transport (parallel; wake, peer choice, policy noise and loss
	// draws all come from the sender's own RNG, in the same order as a
	// serial round; transport stats are atomic sums, independent of
	// worker interleaving). Lost messages never reach the transport —
	// loss is the simulator's failure injection, not the wire's.
	parx.ForEach(s.workers, len(s.nodes), func(w, u int) {
		nd := &s.nodes[u]
		s.pushes[u] = push{to: -1}
		if s.membership != nil && !s.membership.Present(u) {
			// Absent under churn: frozen before any RNG draw, so the
			// node's stream resumes exactly where it paused.
			return
		}
		if len(nd.view) == 0 || !mathx.Bernoulli(nd.rng, s.cfg.WakeProb) {
			return
		}
		to := nd.view[nd.rng.IntN(len(nd.view))]
		encStart := s.cfg.Tracer.Start()
		payload := s.cfg.Policy.Outgoing(nd.m, nd.preTrain, nd.rng, &s.pool)
		s.cfg.Tracer.Span(w, obs.PhaseEncode, round, u, encStart)
		if s.cfg.LossProb > 0 && mathx.Bernoulli(nd.rng, s.cfg.LossProb) {
			s.pool.Put(payload)
			return // failure injection: message lost in transit
		}
		// Plan- and transport-level faults, churn checks and Byzantine
		// corruption consume no RNG beyond their own counter-based
		// streams, so a fault-free run's draw order is untouched by
		// these code paths.
		if s.cfg.FaultPlan != nil && s.cfg.FaultPlan.Unreachable(round, to) {
			// Receiver down this round: skip the push, keep the view.
			s.skippedPeers.Add(1)
			s.pool.Put(payload)
			return
		}
		if s.membership != nil && !s.membership.Present(to) {
			// Receiver left under churn: skip the push, keep the view
			// (the peer may rejoin).
			s.absentSkips.Add(1)
			s.pool.Put(payload)
			return
		}
		if s.cfg.Byzantine != nil && s.cfg.Byzantine.IsAdversary(u) {
			s.cfg.Byzantine.Corrupt(round, u, payload, nd.preTrain)
			s.byzantinePushes.Add(1)
		}
		sendStart := s.cfg.Tracer.Start()
		sent, err := s.tr.Send(round, u, payload, &s.pool)
		s.cfg.Tracer.Span(w, obs.PhaseSend, round, u, sendStart)
		if err != nil {
			s.lostPushes.Add(1)
			return // push lost in transit (payload already recycled)
		}
		s.pushes[u] = push{to: to, payload: sent}
	})

	// Phase 1b: deliver in sender order (sequential — inbox append
	// order and observer callbacks are part of the observable protocol).
	for u := range s.pushes {
		p := s.pushes[u]
		if p.to < 0 {
			continue
		}
		s.pushes[u] = push{to: -1}
		msg := Message{Round: round, From: u, To: p.to, Params: p.payload}
		s.nodes[p.to].inbox = append(s.nodes[p.to].inbox, msg)
		if s.cfg.Observer != nil {
			s.cfg.Observer.OnReceive(msg)
		}
	}

	// Phase 2: aggregate inboxes; Phase 3: local training. Each node
	// touches only its own model, inbox and RNG; consumed payloads are
	// recycled into the (concurrency-safe) pool.
	parx.ForEach(s.workers, len(s.nodes), func(w, u int) {
		nd := &s.nodes[u]
		if s.membership != nil && !s.membership.Present(u) {
			// Absent under churn: no aggregation, no training — the
			// node's model and RNG stay frozen until it rejoins. Its
			// inbox is necessarily empty (senders skip absent peers).
			return
		}
		if len(nd.inbox) > 0 {
			aggStart := s.cfg.Tracer.Start()
			dropOwn := false
			if s.membership != nil && s.cfg.ChurnPlan.StaleBound > 0 {
				if stale := s.membership.RejoinStaleness(u); stale > s.cfg.ChurnPlan.StaleBound {
					// Staleness-bounded merge: the rejoiner missed more
					// rounds than the bound allows, so its own model is
					// outvoted entirely by the fresh inbox.
					dropOwn = true
					s.staleResets.Add(1)
				}
			}
			s.aggregateInbox(nd, dropOwn)
			for i := range nd.inbox {
				s.pool.Put(nd.inbox[i].Params)
				nd.inbox[i].Params = nil
			}
			nd.inbox = nd.inbox[:0]
			s.cfg.Tracer.Span(w, obs.PhaseAggregate, round, u, aggStart)
		}
		nd.preTrain = nd.m.Params().CloneInto(nd.preTrain)
		opt := s.cfg.Train
		opt.Rand = nd.rng
		s.cfg.Policy.PrepareTrain(&opt, nd.m, nd.preTrain)
		trainStart := s.cfg.Tracer.Start()
		nd.m.TrainLocal(s.cfg.Dataset, u, opt)
		s.cfg.Tracer.Span(w, obs.PhaseTrain, round, u, trainStart)
	})

	if s.cfg.Observer != nil {
		s.cfg.Observer.OnRoundEnd(round)
	}
	s.round++
	if s.cfg.OnRound != nil {
		s.cfg.OnRound(round, s)
	}
}

// aggregateInbox merges received payloads into the node's model with
// uniform weights over {own model} ∪ inbox, entry by entry. Entries
// absent from a payload (Share-less user embeddings) keep the node's
// own values — decentralized learning never averages what it never
// receives. dropOwn is the staleness-bounded merge rule for rejoiners
// past ChurnPlan.StaleBound: the node's own entry is excluded from the
// average wherever at least one neighbour sent that entry (entries
// nobody sent keep the stale values — there is nothing fresher).
func (s *Simulation) aggregateInbox(nd *node, dropOwn bool) {
	own := nd.m.Params()
	for i := 0; i < own.Len(); i++ {
		oe := own.At(i)
		name := oe.Name
		if dropOwn {
			var cnt float64
			for _, msg := range nd.inbox {
				if !msg.Params.Has(name) {
					continue
				}
				if cnt == 0 {
					copy(oe.Data, msg.Params.Get(name))
				} else {
					mathx.Axpy(1, msg.Params.Get(name), oe.Data)
				}
				cnt++
			}
			if cnt > 1 {
				mathx.Scale(1/cnt, oe.Data)
			}
			continue
		}
		// In-place: sum payloads into the live entry, then normalize.
		// Same addition order as an explicit accumulator, zero
		// allocation.
		cnt := 1.0
		for _, msg := range nd.inbox {
			if !msg.Params.Has(name) {
				continue
			}
			mathx.Axpy(1, msg.Params.Get(name), oe.Data)
			cnt++
		}
		if cnt > 1 {
			mathx.Scale(1/cnt, oe.Data)
		}
	}
}

// scheduleRefresh draws the node's next view-refresh time from
// Exp(ViewRefreshRate), at least one round away.
func (s *Simulation) scheduleRefresh(u int) {
	delay := int(math.Round(mathx.Exponential(s.nodes[u].rng, s.cfg.ViewRefreshRate)))
	if delay < 1 {
		delay = 1
	}
	s.nodes[u].nextRefresh = s.round + delay
}

// refreshView resamples node u's out-view according to the variant.
func (s *Simulation) refreshView(u int) {
	n := len(s.nodes)
	p := s.cfg.OutDegree
	switch s.cfg.Variant {
	case PersGossip:
		s.nodes[u].view = s.persView(u, p)
	default:
		s.nodes[u].view = s.randView(u, p)
	}
	_ = n
}

// randView draws P distinct peers uniformly, excluding u itself.
func (s *Simulation) randView(u, p int) []int {
	n := len(s.nodes)
	picked := mathx.SampleWithoutReplacement(s.nodes[u].rng, n-1, p)
	view := make([]int, 0, p)
	for _, v := range picked {
		if v >= u {
			v++ // shift over the excluded self index
		}
		view = append(view, v)
	}
	return view
}

// persView implements Pepper-style performance-aware sampling: gather
// a candidate pool (current view plus random peers), rank candidates
// by how well their model scores this node's training items, and fill
// each view slot with the next-best candidate — except that with
// probability ExplorationRatio the slot is filled uniformly at random.
//
// The simulation scores a candidate's live model directly; in a real
// deployment the ranking uses models received earlier, but the
// selection pressure — prefer peers with similar taste — is identical,
// which is the property RQ3 measures.
func (s *Simulation) persView(u, p int) []int {
	nd := &s.nodes[u]
	myItems := s.cfg.Dataset.Train[u]
	pool := make(map[int]struct{}, 3*p)
	for _, v := range nd.view {
		pool[v] = struct{}{}
	}
	for _, v := range s.randView(u, min(2*p, len(s.nodes)-1)) {
		pool[v] = struct{}{}
	}
	// Score = relevance lift of the candidate's model on my items over
	// a random probe set. The subtraction removes the "globally
	// better-trained model" confound so the ranking reflects taste
	// alignment, which is what drives Pepper-style personalization.
	probe := s.probeItems(u)
	candidates := make([]int, 0, len(pool))
	//lint:sorted keys are drained into a slice and sorted immediately below before any order-sensitive use
	for v := range pool {
		candidates = append(candidates, v)
	}
	// Iterate candidates in a defined order: Go map iteration order is
	// random, and letting it leak into the tie-breaking of ArgsortDesc
	// (or the slot-filling below) would make runs irreproducible.
	sort.Ints(candidates)
	scores := make([]float64, 0, len(candidates))
	for _, v := range candidates {
		m := s.nodes[v].m
		scores = append(scores, m.Relevance(u, myItems)-m.Relevance(u, probe))
	}
	order := mathx.ArgsortDesc(scores)

	view := make([]int, 0, p)
	used := map[int]struct{}{u: {}}
	next := 0
	for len(view) < p {
		var pick int
		if mathx.Bernoulli(nd.rng, s.cfg.ExplorationRatio) || next >= len(order) {
			pick = nd.rng.IntN(len(s.nodes))
		} else {
			pick = candidates[order[next]]
			next++
		}
		if _, dup := used[pick]; dup {
			// Fall back to uniform retry; the loop terminates because
			// OutDegree < NumUsers.
			continue
		}
		used[pick] = struct{}{}
		view = append(view, pick)
	}
	return view
}

// probeItems returns node u's fixed random probe set (32 items or the
// whole catalogue if smaller), creating it on first use.
func (s *Simulation) probeItems(u int) []int {
	nd := &s.nodes[u]
	if nd.probe == nil {
		n := s.cfg.Dataset.NumItems
		k := 32
		if k > n {
			k = n
		}
		nd.probe = mathx.SampleWithoutReplacement(nd.rng, n, k)
	}
	return nd.probe
}

// UtilityHR is the mean leave-one-out hit ratio across nodes, each
// evaluated with its own local model (GL has no global model). The
// sweep fans out over the worker pool with one negative-sampling stream
// per (seed, round, node): byte-identical for every Workers setting and
// independent of any other RNG consumption (each node's model is owned
// by exactly one work item, so model-owned forward scratch never races).
func (s *Simulation) UtilityHR(k, numNeg int) float64 {
	evalStart := s.cfg.Tracer.Start()
	hr := s.eval.HR(s.round, s.nodeModel, k, numNeg)
	s.cfg.Tracer.Span(s.workers, obs.PhaseEval, s.round, obs.RoundLevel, evalStart)
	return hr
}

// UtilityF1 is the mean top-k F1 across nodes on their local models.
func (s *Simulation) UtilityF1(k int) float64 {
	evalStart := s.cfg.Tracer.Start()
	f1 := s.eval.F1(s.nodeModel, k)
	s.cfg.Tracer.Span(s.workers, obs.PhaseEval, s.round, obs.RoundLevel, evalStart)
	return f1
}

// nodeModel is the eval engine's pick function: node u evaluates with
// its own model.
func (s *Simulation) nodeModel(_, u int) model.Recommender { return s.nodes[u].m }
