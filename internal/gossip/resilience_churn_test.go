package gossip

import (
	"fmt"
	"testing"

	"github.com/collablearn/ciarec/internal/attack"
	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/transport"
)

// churnTestPlan produces leaves, joins, rejoins and stale resets
// within a short run on the 30-node test network.
func churnTestPlan() transport.ChurnPlan {
	return transport.ChurnPlan{Seed: 5, InitialFraction: 0.8, LeaveProb: 0.3, JoinProb: 0.3, StaleBound: 2}
}

// TestResilienceGossipChurnBackendWorkerEquivalence: a gossip run with
// churn, Byzantine pushes and the staleness-bounded merge rule is
// byte-identical across transport backends and worker counts.
func TestResilienceGossipChurnBackendWorkerEquivalence(t *testing.T) {
	d := gossipTestDataset(t)
	plan := churnTestPlan()
	byz := attack.Byzantine{Kind: attack.ByzCollude, Fraction: 0.2, Seed: 9}

	run := func(backend string, workers int) (*Simulation, []*param.Set, []float64) {
		cfg := gossipConfig(d)
		cfg.Rounds = 10
		cfg.Workers = workers
		tr, err := transport.New(backend)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		cfg.Transport = tr
		cfg.ChurnPlan = &plan
		cfg.Byzantine = &byz
		var hr []float64
		cfg.OnRound = func(round int, s *Simulation) {
			hr = append(hr, s.UtilityHR(10, 20))
		}
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		params := make([]*param.Set, d.NumUsers)
		for u := 0; u < d.NumUsers; u++ {
			params[u] = s.Node(u).Params().Clone()
		}
		return s, params, hr
	}

	refSim, refParams, refHR := run("inproc", 1)
	ref := refSim.Resilience()
	if ref.Joins == 0 || ref.Leaves == 0 || ref.Rejoins == 0 || ref.ByzantinePushes == 0 || ref.StaleResets == 0 {
		t.Fatalf("scenario too tame to prove anything: %+v", ref)
	}
	for _, backend := range []string{"inproc", "wire", "socket"} {
		for _, workers := range []int{1, 3} {
			if backend == "inproc" && workers == 1 {
				continue
			}
			t.Run(fmt.Sprintf("%s/workers=%d", backend, workers), func(t *testing.T) {
				sim, params, hr := run(backend, workers)
				for u := range refParams {
					if !param.Equal(refParams[u], params[u], 0) {
						t.Fatalf("node %d params differ from the reference churn run", u)
					}
				}
				for r := range refHR {
					if hr[r] != refHR[r] {
						t.Fatalf("utility curve differs at round %d", r)
					}
				}
				if sim.Resilience() != ref {
					t.Fatalf("churn accounting %+v != reference %+v", sim.Resilience(), ref)
				}
			})
		}
	}
}

// TestResilienceGossipChurnReplayPredictsCounters replays the pure
// membership fold and demands matching counters from the simulator.
func TestResilienceGossipChurnReplayPredictsCounters(t *testing.T) {
	d := gossipTestDataset(t)
	plan := churnTestPlan()
	cfg := gossipConfig(d)
	cfg.Rounds = 8
	cfg.ChurnPlan = &plan
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	m := transport.NewMembership(plan, d.NumUsers)
	for round := 0; round < cfg.Rounds; round++ {
		m.Advance(round)
	}
	r := s.Resilience()
	if r.Joins != m.Joins() || r.Leaves != m.Leaves() || r.Rejoins != m.Rejoins() {
		t.Fatalf("simulator counters joins/leaves/rejoins = %d/%d/%d, replay predicts %d/%d/%d",
			r.Joins, r.Leaves, r.Rejoins, m.Joins(), m.Leaves(), m.Rejoins())
	}
}

// TestResilienceGossipChurnFreezesAbsentNodes: a round in which every
// node has left must change nothing at all.
func TestResilienceGossipChurnFreezesAbsentNodes(t *testing.T) {
	d := gossipTestDataset(t)
	cfg := gossipConfig(d)
	cfg.Rounds = 3
	cfg.ChurnPlan = &transport.ChurnPlan{Seed: 1, LeaveProb: 1}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]*param.Set, d.NumUsers)
	for u := range before {
		before[u] = s.Node(u).Params().Clone()
	}
	s.Run()
	for u := range before {
		if !param.Equal(before[u], s.Node(u).Params(), 0) {
			t.Fatalf("node %d trained while the whole network was absent", u)
		}
	}
	if tr := s.Traffic(); tr.Messages != 0 {
		t.Fatalf("%d messages moved in an all-absent network", tr.Messages)
	}
	r := s.Resilience()
	if r.Leaves != int64(d.NumUsers) {
		t.Fatalf("Leaves = %d, want %d (everyone leaves in round 0)", r.Leaves, d.NumUsers)
	}
}

// TestResilienceGossipChurnInactivePlanIsFree: a plan that cannot
// change membership is byte-identical to no plan at all.
func TestResilienceGossipChurnInactivePlanIsFree(t *testing.T) {
	d := gossipTestDataset(t)
	run := func(plan *transport.ChurnPlan) []*param.Set {
		cfg := gossipConfig(d)
		cfg.Rounds = 3
		cfg.ChurnPlan = plan
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		params := make([]*param.Set, d.NumUsers)
		for u := range params {
			params[u] = s.Node(u).Params().Clone()
		}
		return params
	}
	ref := run(nil)
	inactive := run(&transport.ChurnPlan{Seed: 99})
	for u := range ref {
		if !param.Equal(ref[u], inactive[u], 0) {
			t.Fatalf("node %d differs under an inactive churn plan", u)
		}
	}
}
