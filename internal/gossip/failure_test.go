package gossip

import "testing"

func TestLossProbDropsMessages(t *testing.T) {
	d := gossipTestDataset(t)
	cfg := gossipConfig(d)
	cfg.Rounds = 10
	cfg.LossProb = 0.5
	obs := &recordingObserver{}
	cfg.Observer = obs
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	expected := 0.5 * float64(d.NumUsers*cfg.Rounds)
	if got := float64(len(obs.msgs)); got < 0.5*expected || got > 1.5*expected {
		t.Fatalf("delivered = %v, want ~%v under 50%% loss", got, expected)
	}
	if s.Traffic().Messages != len(obs.msgs) {
		t.Fatalf("traffic %d != observed %d", s.Traffic().Messages, len(obs.msgs))
	}
}

// Gossip must keep converging despite heavy message loss — nodes fall
// back on their own local training.
func TestLossDoesNotBreakTraining(t *testing.T) {
	d := gossipTestDataset(t)
	cfg := gossipConfig(d)
	cfg.Rounds = 20
	cfg.Train.Epochs = 2
	cfg.LossProb = 0.4
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := s.UtilityHR(10, 30)
	s.Run()
	after := s.UtilityHR(10, 30)
	if after <= before {
		t.Fatalf("training under loss did not improve HR: %.3f -> %.3f", before, after)
	}
}

func TestLossProbValidation(t *testing.T) {
	d := gossipTestDataset(t)
	cfg := gossipConfig(d)
	cfg.LossProb = 1
	if _, err := New(cfg); err == nil {
		t.Fatal("LossProb=1 must be rejected")
	}
}

func TestGossipTrafficAccounting(t *testing.T) {
	d := gossipTestDataset(t)
	cfg := gossipConfig(d)
	cfg.Rounds = 3
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	tr := s.Traffic()
	if tr.Messages != d.NumUsers*3 {
		t.Fatalf("messages = %d, want %d", tr.Messages, d.NumUsers*3)
	}
	if tr.Bytes <= 0 {
		t.Fatal("no bytes accounted")
	}
	perMsg := tr.Bytes / int64(tr.Messages)
	if perMsg != int64(s.Node(0).Params().WireBytes()) {
		t.Fatalf("per-message bytes %d != model wire size %d",
			perMsg, s.Node(0).Params().WireBytes())
	}
}
