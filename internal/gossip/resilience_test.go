package gossip

import (
	"fmt"
	"testing"

	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/transport"
)

// runFaulty executes a fresh simulation from cfg on the named backend
// wrapped in the plan's fault injector.
func runFaulty(t *testing.T, cfg Config, backend string, plan transport.FaultPlan) (*Simulation, []*param.Set, []float64) {
	t.Helper()
	tr, err := transport.NewOptions(transport.FaultyPrefix+backend, transport.Options{Plan: &plan})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	cfg.Transport = tr
	cfg.FaultPlan = &plan
	var hr []float64
	cfg.OnRound = func(round int, s *Simulation) {
		hr = append(hr, s.UtilityHR(10, 20))
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	out := make([]*param.Set, len(s.nodes))
	for u := range s.nodes {
		out[u] = s.nodes[u].m.Params().Clone()
	}
	return s, out, hr
}

// An unreachable receiver skips the push without corrupting the
// sender's view, and a lost send is counted — both pure plan
// functions, so the counters are predictable and the run stays
// byte-identical across backends and worker counts.
func TestFaultyGossipEquivalence(t *testing.T) {
	d := gossipTestDataset(t)
	plan := transport.FaultPlan{
		Seed:         3,
		DropProb:     0.15,
		SendLossProb: 0.15,
	}
	cfg := gossipConfig(d)
	cfg.Rounds = 4

	refSim, refParams, refHR := runFaulty(t, cfg, "inproc", plan)
	ref := refSim.Resilience()
	if ref.SkippedPeers == 0 || ref.LostPushes == 0 {
		t.Fatalf("chaos plan too tame to prove anything: %+v", ref)
	}
	for _, backend := range []string{"inproc", "wire", "socket"} {
		for _, workers := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/workers=%d", backend, workers), func(t *testing.T) {
				c := cfg
				c.Workers = workers
				sim, params, hr := runFaulty(t, c, backend, plan)
				for u := range refParams {
					if !param.Equal(refParams[u], params[u], 0) {
						t.Fatalf("node %d params differ from the reference chaos run", u)
					}
				}
				for r := range refHR {
					if hr[r] != refHR[r] {
						t.Fatalf("utility curve differs at round %d", r)
					}
				}
				if sim.Resilience() != ref {
					t.Fatalf("fault accounting %+v != reference %+v", sim.Resilience(), ref)
				}
			})
		}
	}
}

// Fault handling must consume no simulator RNG: a plan with nothing
// enabled reproduces the plain run exactly, even with the plan and the
// wrapper installed.
func TestGossipInactivePlanIsFree(t *testing.T) {
	d := gossipTestDataset(t)
	cfg := gossipConfig(d)
	cfg.Rounds = 4
	refSim, refParams, refHR := runWithTransport(t, cfg, "inproc")

	sim, params, hr := runFaulty(t, cfg, "inproc", transport.FaultPlan{Seed: 99})
	for u := range refParams {
		if !param.Equal(refParams[u], params[u], 0) {
			t.Fatalf("inactive plan changed node %d", u)
		}
	}
	for r := range refHR {
		if hr[r] != refHR[r] {
			t.Fatalf("inactive plan changed utility at round %d", r)
		}
	}
	if r := sim.Resilience(); r != (Resilience{}) {
		t.Fatalf("inactive plan accumulated fault accounting: %+v", r)
	}
	if refSim.Resilience() != (Resilience{}) {
		t.Fatalf("plain run accumulated fault accounting: %+v", refSim.Resilience())
	}
}
