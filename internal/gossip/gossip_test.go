package gossip

import (
	"testing"

	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/defense"
	"github.com/collablearn/ciarec/internal/model"
)

func gossipTestDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumUsers: 30, NumItems: 100, NumCommunities: 3,
		MeanItemsPerUser: 18, MinItemsPerUser: 6, Affinity: 0.9, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	d.SplitLeaveOneOut(3)
	return d
}

func gossipConfig(d *dataset.Dataset) Config {
	return Config{
		Dataset: d,
		Factory: model.NewGMFFactory(d.NumUsers, d.NumItems, 8),
		Rounds:  5,
		Train:   model.TrainOptions{Epochs: 1},
		Seed:    1,
	}
}

func TestNewValidation(t *testing.T) {
	d := gossipTestDataset(t)
	bad := []Config{
		{},
		{Dataset: d},
		{Dataset: d, Factory: model.NewGMFFactory(d.NumUsers, d.NumItems, 4)},
		{Dataset: d, Factory: model.NewGMFFactory(d.NumUsers, d.NumItems, 4), Rounds: 3, OutDegree: d.NumUsers},
		{Dataset: d, Factory: model.NewGMFFactory(d.NumUsers, d.NumItems, 4), Rounds: 3, WakeProb: 1.5},
		{Dataset: d, Factory: model.NewGMFFactory(d.NumUsers+1, d.NumItems, 4), Rounds: 3},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func TestViewsArePOutRegular(t *testing.T) {
	d := gossipTestDataset(t)
	s, err := New(gossipConfig(d))
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < d.NumUsers; u++ {
		view := s.View(u)
		if len(view) != 3 {
			t.Fatalf("node %d view size %d, want 3 (default P)", u, len(view))
		}
		seen := map[int]struct{}{}
		for _, v := range view {
			if v == u {
				t.Fatalf("node %d has self-loop", u)
			}
			if v < 0 || v >= d.NumUsers {
				t.Fatalf("node %d view member %d out of range", u, v)
			}
			if _, dup := seen[v]; dup {
				t.Fatalf("node %d duplicate view member %d", u, v)
			}
			seen[v] = struct{}{}
		}
	}
}

type recordingObserver struct {
	msgs   []Message
	rounds int
}

func (o *recordingObserver) OnReceive(msg Message) { o.msgs = append(o.msgs, msg) }
func (o *recordingObserver) OnRoundEnd(int)        { o.rounds++ }

func TestMessagesFlowAlongViews(t *testing.T) {
	d := gossipTestDataset(t)
	cfg := gossipConfig(d)
	obs := &recordingObserver{}
	cfg.Observer = obs
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	if obs.rounds != cfg.Rounds {
		t.Fatalf("rounds = %d", obs.rounds)
	}
	// With WakeProb 1 every node sends exactly once per round.
	if len(obs.msgs) != d.NumUsers*cfg.Rounds {
		t.Fatalf("messages = %d, want %d", len(obs.msgs), d.NumUsers*cfg.Rounds)
	}
	for _, msg := range obs.msgs {
		if msg.From == msg.To {
			t.Fatal("self-delivery")
		}
		if msg.Params == nil || msg.Params.Len() == 0 {
			t.Fatal("empty payload")
		}
	}
}

func TestWakeProbThrottlesTraffic(t *testing.T) {
	d := gossipTestDataset(t)
	cfg := gossipConfig(d)
	cfg.WakeProb = 0.3
	cfg.Rounds = 10
	obs := &recordingObserver{}
	cfg.Observer = obs
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	expected := 0.3 * float64(d.NumUsers*cfg.Rounds)
	if got := float64(len(obs.msgs)); got < 0.5*expected || got > 1.5*expected {
		t.Fatalf("messages = %v, want ~%v", got, expected)
	}
}

func TestViewRefreshChangesNeighbours(t *testing.T) {
	d := gossipTestDataset(t)
	cfg := gossipConfig(d)
	cfg.Rounds = 40
	cfg.ViewRefreshRate = 0.5 // mean 2 rounds, fast churn
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := s.View(0)
	s.Run()
	after := s.View(0)
	same := len(before) == len(after)
	if same {
		for i := range before {
			if before[i] != after[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("views never refreshed over 40 fast-churn rounds")
	}
}

func TestStaticGraphKeepsViews(t *testing.T) {
	d := gossipTestDataset(t)
	cfg := gossipConfig(d)
	cfg.StaticGraph = true
	cfg.Rounds = 20
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := s.View(0)
	s.Run()
	after := s.View(0)
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("static graph refreshed a view")
		}
	}
}

func TestGossipTrainingImprovesUtility(t *testing.T) {
	d := gossipTestDataset(t)
	cfg := gossipConfig(d)
	cfg.Rounds = 20
	cfg.Train.Epochs = 2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	before := s.UtilityHR(10, 30)
	s.Run()
	after := s.UtilityHR(10, 30)
	if after <= before {
		t.Fatalf("gossip training did not improve HR: %.3f -> %.3f", before, after)
	}
}

func TestPersGossipPrefersSimilarPeers(t *testing.T) {
	d := gossipTestDataset(t)
	cfg := gossipConfig(d)
	cfg.Variant = PersGossip
	cfg.Rounds = 25
	cfg.ViewRefreshRate = 0.5
	cfg.ExplorationRatio = 0.2
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	// After training, views should over-represent same-community peers
	// relative to the population share.
	var sameView, totalView int
	for u := 0; u < d.NumUsers; u++ {
		for _, v := range s.View(u) {
			totalView++
			if d.PlantedCommunity[u] == d.PlantedCommunity[v] {
				sameView++
			}
		}
	}
	popShare := 1.0 / 3.0 // 3 balanced communities
	viewShare := float64(sameView) / float64(totalView)
	if viewShare < popShare {
		t.Fatalf("pers-gossip views not taste-biased: %.3f < population %.3f", viewShare, popShare)
	}
}

func TestShareLessGossipNeverLeaksUserEmbeddings(t *testing.T) {
	d := gossipTestDataset(t)
	cfg := gossipConfig(d)
	cfg.Policy = defense.ShareLess{Tau: 0.5}
	obs := &recordingObserver{}
	cfg.Observer = obs
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	for _, msg := range obs.msgs {
		if msg.Params.Has(model.GMFUserEmb) {
			t.Fatal("share-less gossip payload contained user embeddings")
		}
	}
	if hr := s.UtilityHR(10, 30); hr < 0 || hr > 1 {
		t.Fatalf("utility out of range: %v", hr)
	}
}

func TestGossipDeterministicRuns(t *testing.T) {
	d := gossipTestDataset(t)
	run := func() float64 {
		s, err := New(gossipConfig(d))
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		return s.Node(0).Params().L2Norm()
	}
	if run() != run() {
		t.Fatal("same seed produced different runs")
	}
}

func TestVariantString(t *testing.T) {
	if RandGossip.String() != "rand-gossip" || PersGossip.String() != "pers-gossip" {
		t.Fatal("variant names changed; experiment output depends on them")
	}
	if Variant(99).String() == "" {
		t.Fatal("unknown variant must still stringify")
	}
}
