package gossip

import (
	"fmt"
	"testing"

	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/transport"
)

// A compressed gossip run — every push quantized through the CPQ1
// codec, coded absolute — must be byte-identical across backends and
// worker counts, and must move at least 2× fewer push bytes than the
// dense codec (gossip pushes whole models, so 8-bit quantization alone
// carries the saving).
func TestCompressedGossipEquivalence(t *testing.T) {
	d := gossipTestDataset(t)
	comp := param.Compression{Bits: 8}
	run := func(backend string, workers int) (*Simulation, []*param.Set) {
		tr, err := transport.NewOptions(backend, transport.Options{Compression: comp})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		cfg := gossipConfig(d)
		cfg.Rounds = 3
		cfg.Workers = workers
		cfg.Transport = tr
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		out := make([]*param.Set, len(s.nodes))
		for u := range s.nodes {
			out[u] = s.nodes[u].m.Params().Clone()
		}
		return s, out
	}
	refSim, refNodes := run("inproc", 1)
	st := refSim.TransportStats()
	if st.Messages == 0 {
		t.Fatal("no pushes delivered — the test is vacuous")
	}
	if st.Bytes*2 > st.RawBytes {
		t.Errorf("compressed pushes moved %d bytes, dense-equivalent %d — want ≥2× saving",
			st.Bytes, st.RawBytes)
	}
	for _, cell := range []struct {
		backend string
		workers int
	}{{"inproc", 3}, {"wire", 3}, {"socket", 2}} {
		t.Run(fmt.Sprintf("%s/workers=%d", cell.backend, cell.workers), func(t *testing.T) {
			sim, nodes := run(cell.backend, cell.workers)
			for u := range refNodes {
				if !param.Equal(refNodes[u], nodes[u], 0) {
					t.Fatalf("node %d differs from the inproc/workers=1 reference", u)
				}
			}
			if sim.Traffic() != refSim.Traffic() {
				t.Fatalf("traffic %+v != %+v", sim.Traffic(), refSim.Traffic())
			}
		})
	}
}

// Gossip's Config.Compression follows the same agreement rules as
// fed's: conflicts are rejected, zero adopts the transport's codec.
func TestGossipCompressionConfigValidation(t *testing.T) {
	d := gossipTestDataset(t)
	tr, err := transport.NewOptions("inproc", transport.Options{Compression: param.Compression{Bits: 8}})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	cfg := gossipConfig(d)
	cfg.Transport = tr
	cfg.Compression = param.Compression{Bits: 16}
	if _, err := New(cfg); err == nil {
		t.Fatal("conflicting Config.Compression and transport codec must be rejected")
	}
	cfg.Compression = param.Compression{}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.cfg.Compression.Bits != 8 {
		t.Fatalf("zero Config.Compression must adopt the transport's codec, got %v", s.cfg.Compression)
	}
	cfg = gossipConfig(d)
	cfg.Compression = param.Compression{Bits: 3}
	if _, err := New(cfg); err == nil {
		t.Fatal("invalid bit width must be rejected")
	}
}
