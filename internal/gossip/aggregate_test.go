package gossip

import (
	"math"
	"testing"

	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/param"
)

// Hand-crafted inbox aggregation: uniform average over {own} ∪ inbox
// for shared entries; own values kept for entries missing from
// payloads.
func TestAggregateInboxMath(t *testing.T) {
	d, err := dataset.New("gagg", 3, 4, [][]int{{0}, {1}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Dataset:   d,
		Factory:   model.NewGMFFactory(3, 4, 2),
		Rounds:    1,
		OutDegree: 2,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	nd := &s.nodes[0]
	own := nd.m.Params()
	ownH := append([]float64(nil), own.Get(model.GMFOutput)...)

	mk := func(shift float64) *param.Set {
		p := own.Clone()
		for i := range p.Get(model.GMFOutput) {
			p.Get(model.GMFOutput)[i] = shift
		}
		return p
	}
	nd.inbox = []Message{
		{From: 1, To: 0, Params: mk(3)},
		{From: 2, To: 0, Params: mk(6)},
	}
	s.aggregateInbox(nd, false)
	for i, v := range own.Get(model.GMFOutput) {
		want := (ownH[i] + 3 + 6) / 3
		if math.Abs(v-want) > 1e-12 {
			t.Fatalf("h[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestAggregateInboxKeepsPrivateEntries(t *testing.T) {
	d, err := dataset.New("gagg2", 2, 4, [][]int{{0}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{
		Dataset:   d,
		Factory:   model.NewGMFFactory(2, 4, 2),
		Rounds:    1,
		OutDegree: 1,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	nd := &s.nodes[0]
	before := append([]float64(nil), nd.m.Params().Get(model.GMFUserEmb)...)
	// A share-less payload: item embeddings only.
	payload := nd.m.Params().Filter(model.GMFItemEmb)
	for i := range payload.Get(model.GMFItemEmb) {
		payload.Get(model.GMFItemEmb)[i] += 1
	}
	nd.inbox = []Message{{From: 1, To: 0, Params: payload}}
	s.aggregateInbox(nd, false)
	for i, v := range nd.m.Params().Get(model.GMFUserEmb) {
		if v != before[i] {
			t.Fatal("private user embeddings were averaged")
		}
	}
}

// Every node must keep receiving traffic over a long run (the random
// peer-sampling property the protocols rely on).
func TestInDegreeCoverage(t *testing.T) {
	dd, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumUsers: 30, NumItems: 60, NumCommunities: 3,
		MeanItemsPerUser: 8, MinItemsPerUser: 3, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	received := make([]int, dd.NumUsers)
	cfg := Config{
		Dataset: dd,
		Factory: model.NewGMFFactory(dd.NumUsers, dd.NumItems, 4),
		Rounds:  60,
		Observer: observerFunc2(func(msg Message) {
			received[msg.To]++
		}),
		Seed: 2,
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	for u, n := range received {
		if n == 0 {
			t.Fatalf("node %d never received a model in 60 rounds", u)
		}
	}
}

type observerFunc2 func(Message)

func (f observerFunc2) OnReceive(msg Message) { f(msg) }
func (observerFunc2) OnRoundEnd(int)          {}
