package gossip

import (
	"fmt"
	"testing"

	"github.com/collablearn/ciarec/internal/defense"
	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/param"
	"github.com/collablearn/ciarec/internal/transport"
)

// runWithTransport executes a fresh simulation from cfg on the named
// backend and returns every node's final parameters plus the per-round
// HR utility curve.
func runWithTransport(t *testing.T, cfg Config, backend string) (*Simulation, []*param.Set, []float64) {
	t.Helper()
	tr, err := transport.New(backend)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { tr.Close() })
	cfg.Transport = tr
	var hr []float64
	cfg.OnRound = func(round int, s *Simulation) {
		hr = append(hr, s.UtilityHR(10, 20))
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Run()
	out := make([]*param.Set, len(s.nodes))
	for u := range s.nodes {
		out[u] = s.nodes[u].m.Params().Clone()
	}
	return s, out, hr
}

// Cross-backend equivalence for the decentralized protocol: for every
// (variant/policy, model, workers) cell the serializing backends —
// wire, chunk-framed wire, and the socket RPC path over a loopback
// Unix-domain socket server — must produce byte-identical node models,
// identical utility curves and identical delivered-message accounting.
// CI runs this under -race, exercising concurrent wire encode/decode
// and concurrent RPC round-trips from the node pool.
func TestTransportBackendEquivalence(t *testing.T) {
	d := gossipTestDataset(t)
	cases := map[string]func(*Config){
		"rand-gossip":  func(c *Config) {},
		"pers-gossip":  func(c *Config) { c.Variant = PersGossip },
		"share-less":   func(c *Config) { c.Policy = defense.ShareLess{Tau: 1} },
		"dp-sgd":       func(c *Config) { c.Policy = defense.DPSGD{Clip: 2, NoiseMultiplier: 0.05} },
		"lossy-sparse": func(c *Config) { c.LossProb = 0.2; c.WakeProb = 0.5 },
		"prme":         func(c *Config) { c.Factory = model.NewPRMEFactory(c.Dataset.NumUsers, c.Dataset.NumItems, 8) },
	}
	for name, mutate := range cases {
		for _, workers := range []int{1, 3} {
			t.Run(fmt.Sprintf("%s/workers=%d", name, workers), func(t *testing.T) {
				cfg := gossipConfig(d)
				mutate(&cfg)
				cfg.Rounds = 4
				cfg.Workers = workers
				refSim, refParams, refHR := runWithTransport(t, cfg, "inproc")
				for _, backend := range []string{"wire", "wire-chunked", "socket"} {
					sim, params, hr := runWithTransport(t, cfg, backend)
					for u := range refParams {
						if !param.Equal(refParams[u], params[u], 0) {
							t.Fatalf("%s node %d params differ from inproc", backend, u)
						}
					}
					for r := range refHR {
						if hr[r] != refHR[r] {
							t.Fatalf("%s utility curve differs from inproc at round %d", backend, r)
						}
					}
					if sim.Traffic() != refSim.Traffic() {
						t.Fatalf("%s traffic %+v != inproc %+v", backend, sim.Traffic(), refSim.Traffic())
					}
				}
			})
		}
	}
}

// The receiving adversary's observation stream (sender, receiver,
// payload values) must be identical under the wire backends.
func TestTransportObserverSequence(t *testing.T) {
	d := gossipTestDataset(t)
	type seen struct {
		round, from, to int
		norm            float64
	}
	record := func(backend string) []seen {
		tr, err := transport.New(backend)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { tr.Close() })
		var log []seen
		cfg := gossipConfig(d)
		cfg.Workers = 4
		cfg.Transport = tr
		cfg.Observer = observerFunc2(func(msg Message) {
			log = append(log, seen{msg.Round, msg.From, msg.To, msg.Params.L2Norm()})
		})
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		s.Run()
		return log
	}
	ref := record("inproc")
	for _, backend := range []string{"wire", "wire-chunked", "socket"} {
		got := record(backend)
		if len(ref) != len(got) {
			t.Fatalf("%s observation count %d != inproc %d", backend, len(got), len(ref))
		}
		for i := range ref {
			if ref[i] != got[i] {
				t.Fatalf("%s observation %d differs: %+v vs %+v", backend, i, got[i], ref[i])
			}
		}
	}
}
