package attack

import (
	"testing"
	"testing/quick"

	"github.com/collablearn/ciarec/internal/evalx"
	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/param"
)

// Property: CIA predictions only ever contain observed senders, and
// accuracy never exceeds the observation upper bound.
func TestCIAPredictionWithinObservationsProperty(t *testing.T) {
	f := func(seed uint64, observedMask uint16) bool {
		const n = 16
		const k = 4
		ev := &stubEval{targets: 1}
		cia := New(Config{Beta: 0.5, K: k, NumUsers: n, Eval: ev})
		r := mathx.NewRand(seed)
		for u := 0; u < n; u++ {
			if observedMask&(1<<u) == 0 {
				continue
			}
			s := param.New()
			s.AddVector("x", []float64{r.Float64()})
			cia.Observe(u, s)
		}
		cia.EndRound()
		pred := cia.Predict(0)
		seen := cia.Seen()
		for _, u := range pred {
			if _, ok := seen[u]; !ok {
				return false
			}
		}
		// Random ground truth of size k.
		truth := map[int]struct{}{}
		for _, u := range mathx.SampleWithoutReplacement(r, n, k) {
			truth[u] = struct{}{}
		}
		acc := evalx.Accuracy(pred, truth)
		bound := evalx.UpperBound(seen, truth)
		return acc <= bound+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: with beta = 0 the momentum state always equals the most
// recent observation exactly, for any observation sequence.
func TestCIAZeroBetaIsLatestProperty(t *testing.T) {
	f := func(values []float64) bool {
		if len(values) == 0 {
			return true
		}
		ev := &stubEval{targets: 1}
		cia := New(Config{Beta: 0, K: 1, NumUsers: 1, Eval: ev})
		var last float64
		for _, v := range values {
			s := param.New()
			s.AddVector("x", []float64{v})
			cia.Observe(0, s)
			last = v
		}
		return cia.State(0).Get("x")[0] == last
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: the momentum state is always a convex combination of the
// observations — it stays within [min, max] of everything observed.
func TestCIAMomentumConvexityProperty(t *testing.T) {
	f := func(values []float64, betaRaw float64) bool {
		if len(values) == 0 {
			return true
		}
		beta := 0.5 * (1 + mathx.Sigmoid(betaRaw)) // (0.5, 1)
		if beta >= 1 {
			beta = 0.99
		}
		for i, v := range values {
			if v != v || v > 1e100 || v < -1e100 { // NaN/huge guards
				values[i] = 0
			}
		}
		ev := &stubEval{targets: 1}
		cia := New(Config{Beta: beta, K: 1, NumUsers: 1, Eval: ev})
		lo, hi := values[0], values[0]
		for _, v := range values {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
			s := param.New()
			s.AddVector("x", []float64{v})
			cia.Observe(0, s)
		}
		got := cia.State(0).Get("x")[0]
		span := hi - lo
		return got >= lo-1e-9*(span+1) && got <= hi+1e-9*(span+1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
