package attack

import (
	"testing"

	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/evalx"
	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/param"
)

func attackDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	d, err := dataset.GenerateSynthetic(dataset.SyntheticConfig{
		NumUsers: 30, NumItems: 100, NumCommunities: 3,
		MeanItemsPerUser: 18, MinItemsPerUser: 6, Affinity: 0.9, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// trainedModels trains one GMF model per user (as GL nodes would) and
// returns their payload snapshots.
func trainedModels(t *testing.T, d *dataset.Dataset, epochs int) []*param.Set {
	t.Helper()
	r := mathx.NewRand(1)
	out := make([]*param.Set, d.NumUsers)
	for u := 0; u < d.NumUsers; u++ {
		m := model.NewGMF(d.NumUsers, d.NumItems, 8, 100) // same init for all
		for e := 0; e < epochs; e++ {
			m.TrainLocal(d, u, model.TrainOptions{Rand: r})
		}
		out[u] = m.Params().Clone()
	}
	return out
}

func allTargets(d *dataset.Dataset) [][]int { return d.Train }

func TestNewCIAValidation(t *testing.T) {
	ev := NewRecommenderEval(model.NewGMF(2, 3, 2, 1), [][]int{{0}})
	bad := []func(){
		func() { New(Config{K: 5, NumUsers: 10}) },                       // no eval
		func() { New(Config{Eval: ev, K: 0, NumUsers: 10}) },             // bad K
		func() { New(Config{Eval: ev, K: 5, NumUsers: 10, Beta: 1}) },    // bad beta
		func() { New(Config{Eval: ev, K: 5, NumUsers: 10, Workers: 2}) }, // workers without NewEval
		func() { NewRecommenderEval(model.NewGMF(2, 3, 2, 1), nil) },     // no targets
	}
	for i, f := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d should panic", i)
				}
			}()
			f()
		}()
	}
}

// The headline behaviour: given per-user trained models, CIA recovers
// the Jaccard ground-truth communities far better than random.
func TestCIARecoversCommunities(t *testing.T) {
	d := attackDataset(t)
	payloads := trainedModels(t, d, 12)
	const k = 8
	targets := allTargets(d)
	truths := evalx.TrueCommunities(d, k)

	cia := New(Config{
		Beta:     0.9,
		K:        k,
		NumUsers: d.NumUsers,
		Eval:     NewRecommenderEval(model.NewGMF(d.NumUsers, d.NumItems, 8, 0), targets),
	})
	for u, p := range payloads {
		cia.Observe(u, p)
	}
	cia.EndRound()
	accs := cia.Accuracies(truths)
	mean := mathx.Mean(accs)
	random := evalx.RandomBound(k, d.NumUsers)
	// With K=8 of 30 users the random bound is already 0.27, so "far
	// better than random" means at least doubling it.
	if mean < 2*random {
		t.Fatalf("CIA mean accuracy %.3f < 2x random bound %.3f", mean, random)
	}
}

func TestCIAPredictSelfInOwnCommunity(t *testing.T) {
	d := attackDataset(t)
	payloads := trainedModels(t, d, 12)
	const k = 8
	cia := New(Config{
		Beta: 0.9, K: k, NumUsers: d.NumUsers,
		Eval: NewRecommenderEval(model.NewGMF(d.NumUsers, d.NumItems, 8, 0), allTargets(d)),
	})
	for u, p := range payloads {
		cia.Observe(u, p)
	}
	cia.EndRound()
	// A user's own trained model should almost always rank in the
	// predicted community for their own training set.
	hits := 0
	for a := 0; a < d.NumUsers; a++ {
		for _, u := range cia.Predict(a) {
			if u == a {
				hits++
				break
			}
		}
	}
	if hits < d.NumUsers*3/4 {
		t.Fatalf("self-identification only %d/%d", hits, d.NumUsers)
	}
}

func TestCIAMomentumMatchesEquation4(t *testing.T) {
	mk := func(v float64) *param.Set {
		s := param.New()
		s.AddVector("x", []float64{v})
		return s
	}
	ev := &stubEval{targets: 1}
	cia := New(Config{Beta: 0.5, K: 1, NumUsers: 3, Eval: ev})
	cia.Observe(0, mk(10)) // v0 = 10 (first observation)
	if got := cia.State(0).Get("x")[0]; got != 10 {
		t.Fatalf("v after first obs = %v, want 10", got)
	}
	cia.Observe(0, mk(20)) // v = 0.5*10 + 0.5*20 = 15
	if got := cia.State(0).Get("x")[0]; got != 15 {
		t.Fatalf("v after second obs = %v, want 15", got)
	}
	if cia.State(1) != nil {
		t.Fatal("unobserved sender has a state")
	}
	if cia.NumObserved() != 1 {
		t.Fatal("NumObserved wrong")
	}
}

// stubEval scores a loaded state by its single parameter value.
type stubEval struct {
	targets int
	loaded  float64
}

func (s *stubEval) Load(state *param.Set)       { s.loaded = state.Get("x")[0] }
func (s *stubEval) Score(sender, t int) float64 { return s.loaded }
func (s *stubEval) NumTargets() int             { return s.targets }

func TestCIAPredictOnlyRanksObserved(t *testing.T) {
	ev := &stubEval{targets: 1}
	cia := New(Config{Beta: 0, K: 5, NumUsers: 10, Eval: ev})
	for _, u := range []int{2, 7} {
		s := param.New()
		s.AddVector("x", []float64{float64(u)})
		cia.Observe(u, s)
	}
	cia.EndRound()
	pred := cia.Predict(0)
	if len(pred) != 2 {
		t.Fatalf("predicted %d users, want 2 (only observed)", len(pred))
	}
	if pred[0] != 7 || pred[1] != 2 {
		t.Fatalf("ranking = %v, want [7 2]", pred)
	}
	seen := cia.Seen()
	if len(seen) != 2 {
		t.Fatalf("Seen = %v", seen)
	}
}

func TestCIAUpperBoundSemantics(t *testing.T) {
	truth := map[int]struct{}{1: {}, 2: {}, 3: {}, 4: {}}
	seen := map[int]struct{}{1: {}, 9: {}}
	if got := evalx.UpperBound(seen, truth); got != 0.25 {
		t.Fatalf("upper bound %v, want 0.25", got)
	}
}

func TestCIAParallelMatchesSerial(t *testing.T) {
	d := attackDataset(t)
	payloads := trainedModels(t, d, 6)
	const k = 8
	targets := allTargets(d)

	run := func(workers int) []float64 {
		cfg := Config{
			Beta: 0.9, K: k, NumUsers: d.NumUsers,
			Eval:    NewRecommenderEval(model.NewGMF(d.NumUsers, d.NumItems, 8, 0), targets),
			Workers: workers,
		}
		if workers > 1 {
			cfg.NewEval = func() Evaluator {
				return NewRecommenderEval(model.NewGMF(d.NumUsers, d.NumItems, 8, 0), targets)
			}
		}
		cia := New(cfg)
		for u, p := range payloads {
			cia.Observe(u, p)
		}
		cia.EndRound()
		return cia.Accuracies(evalx.TrueCommunities(d, k))
	}
	serial := run(1)
	parallel := run(4)
	for i := range serial {
		if serial[i] != parallel[i] {
			t.Fatalf("parallel scoring diverged at target %d: %v != %v", i, serial[i], parallel[i])
		}
	}
}

func TestCIAShareLessAdaptation(t *testing.T) {
	d := attackDataset(t)
	const k = 5
	// Train per-user models, then strip user embeddings (share-less
	// payloads).
	fullPayloads := trainedModels(t, d, 12)
	scratchRef := model.NewGMF(d.NumUsers, d.NumItems, 8, 0)
	partial := make([]*param.Set, len(fullPayloads))
	for u, p := range fullPayloads {
		partial[u] = p.Without(scratchRef.PrivateEntries()...)
	}
	targets := allTargets(d)
	ev := NewShareLessEval(model.NewGMF(d.NumUsers, d.NumItems, 8, 0), targets)
	// Fit fictive users against one representative payload.
	ev.RefreshFictive(partial[0], 10, mathx.NewRand(3))

	cia := New(Config{Beta: 0.9, K: k, NumUsers: d.NumUsers, Eval: ev})
	for u, p := range partial {
		cia.Observe(u, p)
	}
	cia.EndRound()
	mean := mathx.Mean(cia.Accuracies(evalx.TrueCommunities(d, k)))
	random := evalx.RandomBound(k, d.NumUsers)
	if mean < 1.5*random {
		t.Fatalf("share-less CIA accuracy %.3f not above random %.3f", mean, random)
	}
	if !ev.ShareLess() {
		t.Fatal("evaluator should report share-less mode")
	}
}

func TestShareLessEvalRequiresFictiveFit(t *testing.T) {
	ev := NewShareLessEval(model.NewGMF(3, 4, 2, 1), [][]int{{0, 1}})
	s := model.NewGMF(3, 4, 2, 2).Params().Clone()
	ev.Load(s)
	defer func() {
		if recover() == nil {
			t.Fatal("Score before RefreshFictive must panic")
		}
	}()
	ev.Score(0, 0)
}

func TestRefreshFictiveOnFullEvalPanics(t *testing.T) {
	ev := NewRecommenderEval(model.NewGMF(3, 4, 2, 1), [][]int{{0}})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ev.RefreshFictive(model.NewGMF(3, 4, 2, 2).Params().Clone(), 1, mathx.NewRand(1))
}

// Momentum ablation: with beta=0 the state equals the latest
// observation exactly.
func TestCIAZeroBetaTracksLatest(t *testing.T) {
	ev := &stubEval{targets: 1}
	cia := New(Config{Beta: 0, K: 1, NumUsers: 2, Eval: ev})
	mk := func(v float64) *param.Set {
		s := param.New()
		s.AddVector("x", []float64{v})
		return s
	}
	cia.Observe(0, mk(5))
	cia.Observe(0, mk(-3))
	if got := cia.State(0).Get("x")[0]; got != -3 {
		t.Fatalf("beta=0 state = %v, want -3", got)
	}
}
