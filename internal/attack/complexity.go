package attack

import "fmt"

// CostModel reproduces the temporal-complexity analysis of Table IX.
// All quantities are expressed in abstract "unit operations": TM and
// IM are the training and inference costs of the recommendation model,
// TC and IC those of the AIA classifier. The paper assumes I << T and
// IC ≈ IM; the constructors below plug in the concrete workload sizes
// so benchmarks can print the table with numbers next to the formulas.
type CostModel struct {
	// Users is |U|, the number of participants.
	Users int
	// TargetSize is |V_target|.
	TargetSize int
	// DMax is the size of the largest user training set.
	DMax int
	// TrainModel (TM) is the cost of training one recommendation model.
	TrainModel float64
	// InferModel (IM) is the cost of one model inference.
	InferModel float64
	// TrainClassifier (TC) and InferClassifier (IC) are the AIA
	// classifier costs.
	TrainClassifier float64
	InferClassifier float64
	// FictiveUsers is N+M, the AIA fictive sample count.
	FictiveUsers int
}

// CIACost is O(TM) + O(IM·|U|·|V_target|): one fictive-embedding fit
// (the Share-less worst case) plus one inference per user per target
// item.
func (c CostModel) CIACost() float64 {
	return c.TrainModel + c.InferModel*float64(c.Users)*float64(c.TargetSize)
}

// MIACost is O(TM) + O(IM·|U|·Dmax): the entropy MIA must probe
// candidate training items for every user, up to the largest training
// set.
func (c CostModel) MIACost() float64 {
	return c.TrainModel + c.InferModel*float64(c.Users)*float64(c.DMax)
}

// AIACost is O(TM·(N+M)) + O(TC) + O(IC·|U|): N+M fictive model
// trainings, a classifier fit, and one classification per user.
func (c CostModel) AIACost() float64 {
	return c.TrainModel*float64(c.FictiveUsers) + c.TrainClassifier +
		c.InferClassifier*float64(c.Users)
}

// Table renders the three rows of Table IX with both the symbolic
// complexity and the plugged-in unit-operation estimate.
func (c CostModel) Table() string {
	return fmt.Sprintf(
		"CIA  O(TM) + O(IM*|U|*|Vtarget|)      = %.3g units\n"+
			"MIA  O(TM) + O(IM*|U|*Dmax)           = %.3g units\n"+
			"AIA  O(TM*(N+M)) + O(TC) + O(IC*|U|)  = %.3g units\n",
		c.CIACost(), c.MIACost(), c.AIACost())
}
