package attack

import (
	"fmt"

	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/evalx"
	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/param"
)

// MIA implements the entropy-based membership inference attack of Song
// & Mittal (2021) repurposed as a community detector (§VIII-C1): for
// every received model and every target item, the item is classified a
// training-set member when the binary entropy of the model's
// prediction falls below the threshold ρ (confident predictions ⇒
// memorized). Users are then ranked by how many target items were
// classified as members of their training set, and the top K form the
// inferred community.
type MIA struct {
	// Rho is the entropy threshold ρ in nats (the paper sweeps
	// 0.2...1; note ln 2 ≈ 0.69 is the maximum binary entropy).
	Rho float64
	// K is the inferred community size.
	K int
	// Guarded additionally requires p >= 0.5 for a member call.
	// The paper's attack thresholds entropy alone (§VIII-C1), which
	// also fires on confidently-*rejected* items (binary entropy is
	// symmetric) — that is the variant CIA is compared against in
	// Table VIII. The guarded variant repairs this defect and becomes
	// a markedly stronger community proxy; the reproduction reports
	// both (see EXPERIMENTS.md).
	Guarded bool

	scratch  model.Recommender
	targets  [][]int
	numUsers int

	counts  [][]float64 // [target][sender] member-classified counts
	hasSeen []bool
	// probs is the grown-on-demand buffer the batched per-target
	// membership sweep writes the model's confidences into.
	probs []float64

	// precision bookkeeping over all (sender, item) member calls.
	memberCalls   int
	memberInTrain int
	data          *dataset.Dataset
}

// NewMIA builds the MIA community proxy. d is used only for precision
// accounting (the attacker does not read it to rank users).
func NewMIA(rho float64, k int, scratch model.Recommender, targets [][]int, d *dataset.Dataset) *MIA {
	if rho <= 0 {
		panic(fmt.Sprintf("attack: MIA rho %v must be positive", rho))
	}
	if k <= 0 {
		panic("attack: MIA k must be positive")
	}
	if len(targets) == 0 {
		panic("attack: MIA requires at least one target")
	}
	m := &MIA{
		Rho:      rho,
		K:        k,
		scratch:  scratch,
		targets:  targets,
		numUsers: d.NumUsers,
		counts:   make([][]float64, len(targets)),
		hasSeen:  make([]bool, d.NumUsers),
		data:     d,
	}
	for t := range m.counts {
		m.counts[t] = make([]float64, d.NumUsers)
	}
	return m
}

// Observe classifies each target item's membership under the received
// model and updates the sender's per-target member counts. Unlike CIA
// there is no momentum: the proxy scores raw uploads, as in §VIII-C1.
// Each target's confidences come from one batched PredictItems sweep
// instead of a Predict call per item.
func (m *MIA) Observe(sender int, payload *param.Set) {
	m.scratch.Params().CopyShared(payload)
	m.hasSeen[sender] = true
	trainSet := m.data.TrainSet(sender)
	for t, target := range m.targets {
		if cap(m.probs) < len(target) {
			m.probs = make([]float64, len(target))
		}
		probs := m.probs[:len(target)]
		m.scratch.PredictItems(sender, target, probs)
		var members float64
		for i, it := range target {
			p := probs[i]
			if m.Guarded && p < 0.5 {
				continue
			}
			if mathx.BinaryEntropy(p) <= m.Rho {
				members++
				m.memberCalls++
				if _, ok := trainSet[it]; ok {
					m.memberInTrain++
				}
			}
		}
		// Latest-observation semantics, mirroring Alg. 1's re-sorted
		// score dictionary.
		m.counts[t][sender] = members
	}
}

// Predict returns the top-K users by member count for target t.
func (m *MIA) Predict(t int) []int {
	ranked := evalx.SortedByScoreDesc(m.counts[t], m.hasSeen)
	if len(ranked) > m.K {
		ranked = ranked[:m.K]
	}
	return ranked
}

// Accuracies returns Accuracy@R for every target.
func (m *MIA) Accuracies(truths []map[int]struct{}) []float64 {
	if len(truths) != len(m.targets) {
		panic(fmt.Sprintf("attack: %d truths for %d targets", len(truths), len(m.targets)))
	}
	out := make([]float64, len(truths))
	for t := range truths {
		out[t] = evalx.Accuracy(m.Predict(t), truths[t])
	}
	return out
}

// Precision returns the fraction of member classifications that were
// actually training-set members (Table VIII's "MIA Precision" row),
// or 0 before any member call.
func (m *MIA) Precision() float64 {
	if m.memberCalls == 0 {
		return 0
	}
	return float64(m.memberInTrain) / float64(m.memberCalls)
}
