package attack

import (
	"fmt"
	"math/rand/v2"

	"github.com/collablearn/ciarec/internal/dataset"
	"github.com/collablearn/ciarec/internal/evalx"
	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/param"
)

// AIA implements the attribute inference attack of §VIII-C2 used as a
// community detector, following Weinsberg et al.'s recipe: the
// adversary samples N fictive community members (random subsets of
// V_target) and M non-members (random subsets of V ∖ V_target), trains
// a local model for each starting from the current global model,
// collects the item-embedding updates (gradients), and fits a
// five-layer binary MLP classifying member vs non-member updates. At
// attack time every received model's update is classified and users
// are ranked by the classifier's community probability.
//
// As the paper observes, this is both costlier than CIA (N+M extra
// model trainings plus a classifier fit) and weaker (locally-generated
// gradients do not match FL-round gradients); Table IX and the §VIII-C2
// experiment quantify exactly that.
type AIA struct {
	clf       *model.MLP
	base      *param.Set // reference params for update extraction
	itemEntry string     // entry whose delta is the classifier feature
	dim       int        // feature dimension
	k         int

	scores  []float64
	hasSeen []bool
}

// AIAConfig parameterizes AIA training.
type AIAConfig struct {
	// Target is the community item set V_target.
	Target []int
	// K is the inferred community size.
	K int
	// Members (N) and NonMembers (M) are the fictive-user sample
	// counts (defaults 20/20).
	Members, NonMembers int
	// HistSize is the history length of each fictive user (default:
	// min(len(Target), 30)).
	HistSize int
	// LocalEpochs is the local-training length per fictive user
	// (default 1, one FL round's worth).
	LocalEpochs int
	// ClassifierEpochs is the MLP fit length (default 30).
	ClassifierEpochs int
	// Hidden are the classifier's hidden-layer widths (default
	// [64, 32, 16, 8] — five FC layers with the input and output).
	Hidden []int
	// Rand drives all sampling (required).
	Rand *rand.Rand
}

func (c *AIAConfig) setDefaults() {
	if c.Members == 0 {
		c.Members = 20
	}
	if c.NonMembers == 0 {
		c.NonMembers = 20
	}
	if c.HistSize == 0 {
		c.HistSize = len(c.Target)
		if c.HistSize > 30 {
			c.HistSize = 30
		}
	}
	if c.LocalEpochs == 0 {
		c.LocalEpochs = 1
	}
	if c.ClassifierEpochs == 0 {
		c.ClassifierEpochs = 60
	}
	if len(c.Hidden) == 0 {
		c.Hidden = []int{64, 32, 16, 8}
	}
}

// TrainAIA runs the offline phase: generate fictive gradients and fit
// the classifier. global is the adversary's reference model (e.g. the
// FL global model after warm-up); d supplies the item catalogue shape.
func TrainAIA(global model.Recommender, d *dataset.Dataset, cfg AIAConfig) (*AIA, error) {
	cfg.setDefaults()
	if cfg.Rand == nil {
		return nil, fmt.Errorf("attack: AIAConfig.Rand is required")
	}
	if len(cfg.Target) == 0 {
		return nil, fmt.Errorf("attack: AIA requires a non-empty target")
	}
	if cfg.K <= 0 {
		return nil, fmt.Errorf("attack: AIA requires K > 0")
	}
	itemEntries := global.ItemEntries()
	if len(itemEntries) == 0 {
		return nil, fmt.Errorf("attack: model %s has no item entries", global.Name())
	}
	entry := itemEntries[0]
	base := global.Params().Clone()
	dim := len(base.Get(entry))

	a := &AIA{
		base:      base,
		itemEntry: entry,
		dim:       dim,
		k:         cfg.K,
		scores:    make([]float64, d.NumUsers),
		hasSeen:   make([]bool, d.NumUsers),
	}

	// Complement catalogue for non-members.
	inTarget := make(map[int]struct{}, len(cfg.Target))
	for _, it := range cfg.Target {
		inTarget[it] = struct{}{}
	}
	complement := make([]int, 0, d.NumItems-len(inTarget))
	for it := 0; it < d.NumItems; it++ {
		if _, ok := inTarget[it]; !ok {
			complement = append(complement, it)
		}
	}
	if len(complement) == 0 {
		return nil, fmt.Errorf("attack: target covers the whole catalogue")
	}

	// Fictive histories are *mixtures*: members draw most (but not
	// all) of their items from V_target, non-members mostly from the
	// complement. Pure sampling (member history ⊆ V_target exactly, as
	// a literal reading of §VIII-C2 suggests) makes the classifier
	// collapse to detecting the exact target set: it assigns ~1 to the
	// target owner and noise to everyone else, i.e. random community
	// accuracy. Real community members only *overlap* the target, so
	// the training distribution must contain partial overlaps too.
	var xs [][]float64
	var labels []int
	sampleMixed := func(mix float64) []int {
		n := cfg.HistSize
		seen := make(map[int]struct{}, n)
		items := make([]int, 0, n)
		for len(items) < n && len(seen) < len(cfg.Target)+len(complement) {
			pool := complement
			if mathx.Bernoulli(cfg.Rand, mix) {
				pool = cfg.Target
			}
			it := pool[cfg.Rand.IntN(len(pool))]
			if _, dup := seen[it]; dup {
				continue
			}
			seen[it] = struct{}{}
			items = append(items, it)
		}
		return items
	}
	for i := 0; i < cfg.Members+cfg.NonMembers; i++ {
		label := 0
		mix := 0.2 * cfg.Rand.Float64() // non-member: 0–20% target items
		if i < cfg.Members {
			label = 1
			mix = 0.5 + 0.5*cfg.Rand.Float64() // member: 50–100%
		}
		feat := a.fictiveGradient(global, d, sampleMixed(mix), cfg)
		xs = append(xs, feat)
		labels = append(labels, label)
	}

	sizes := append([]int{dim}, cfg.Hidden...)
	sizes = append(sizes, 1)
	a.clf = model.NewMLP(sizes, true, cfg.Rand.Uint64())
	for e := 0; e < cfg.ClassifierEpochs; e++ {
		a.clf.TrainEpoch(cfg.Rand, xs, labels, 0.02)
	}
	return a, nil
}

// fictiveGradient trains a clone of the global model as a fake client
// holding items, and returns the flattened item-embedding update.
func (a *AIA) fictiveGradient(global model.Recommender, d *dataset.Dataset, items []int, cfg AIAConfig) []float64 {
	clone := global.Clone()
	tmp, err := dataset.New("aia-fictive", d.NumUsers, d.NumItems, [][]int{items})
	if err != nil {
		panic(err) // construction above guarantees validity
	}
	clone.TrainLocal(tmp, 0, model.TrainOptions{Epochs: cfg.LocalEpochs, Rand: cfg.Rand})
	return a.updateFeature(clone.Params())
}

// updateFeature extracts the item-entry delta against the base params,
// L2-normalized: the classifier should key on the *direction* of the
// update (which item rows moved), not its magnitude, which varies with
// history length and learning rate.
func (a *AIA) updateFeature(params *param.Set) []float64 {
	cur := params.Get(a.itemEntry)
	ref := a.base.Get(a.itemEntry)
	feat := make([]float64, a.dim)
	for i := range feat {
		feat[i] = cur[i] - ref[i]
	}
	if n := mathx.L2Norm(feat); n > 0 {
		mathx.Scale(1/n, feat)
	}
	return feat
}

// Observe classifies the received model's update and records the
// sender's community probability (latest observation wins).
func (a *AIA) Observe(sender int, payload *param.Set) {
	if !payload.Has(a.itemEntry) {
		return
	}
	a.scores[sender] = a.clf.PredictProb(a.updateFeature(payload), 1)
	a.hasSeen[sender] = true
}

// Predict returns the top-K users by classifier probability.
func (a *AIA) Predict() []int {
	ranked := evalx.SortedByScoreDesc(a.scores, a.hasSeen)
	if len(ranked) > a.k {
		ranked = ranked[:a.k]
	}
	return ranked
}

// Accuracy returns Accuracy@R against the ground-truth community.
func (a *AIA) Accuracy(truth map[int]struct{}) float64 {
	return evalx.Accuracy(a.Predict(), truth)
}
