package attack

import (
	"math"
	"testing"

	"github.com/collablearn/ciarec/internal/param"
)

func byzPair() (payload, ref *param.Set) {
	payload = param.New()
	payload.Add("emb", 2, 3, []float64{1, 2, 3, 4, 5, 6})
	payload.Add("bias", 1, 2, []float64{0.5, -0.5})
	ref = param.New()
	ref.Add("emb", 2, 3, []float64{0, 1, 2, 3, 4, 5})
	ref.Add("bias", 1, 2, []float64{0, 0})
	return payload, ref
}

func TestByzantineRoundTrip(t *testing.T) {
	pops := []Byzantine{
		DefaultByzantine(),
		{Kind: ByzScaledNoise, Fraction: 0.25, Scale: 0.5, Seed: 7},
		{Kind: ByzCollude, Fraction: 1, Seed: 3},
	}
	for _, b := range pops {
		got, err := ParseByzantine(b.String())
		if err != nil {
			t.Fatalf("ParseByzantine(%q): %v", b.String(), err)
		}
		if got != b {
			t.Errorf("round trip of %q: got %+v want %+v", b.String(), got, b)
		}
	}
	if got, err := ParseByzantine(""); err != nil || got.Enabled() {
		t.Errorf("empty spec should be disabled, got %+v, %v", got, err)
	}
	if got, err := ParseByzantine("default"); err != nil || got != DefaultByzantine() {
		t.Errorf("ParseByzantine(default) = %+v, %v", got, err)
	}
}

func TestByzantineParseErrors(t *testing.T) {
	for _, spec := range []string{
		"kind=evil",    // unknown kind
		"frac=1.5",     // fraction out of range
		"scale=-1",     // negative scale
		"mystery=1",    // unknown key
		"frac",         // no value
		"seed=notanum", // bad uint
	} {
		if _, err := ParseByzantine(spec); err == nil {
			t.Errorf("ParseByzantine(%q): want error, got nil", spec)
		}
	}
}

func TestByzantineSelectionPure(t *testing.T) {
	b := Byzantine{Kind: ByzSignFlip, Fraction: 0.3, Seed: 5}
	var adversaries int
	for id := 0; id < 1000; id++ {
		first := b.IsAdversary(id)
		if first != b.IsAdversary(id) {
			t.Fatalf("IsAdversary(%d) not stable", id)
		}
		if first {
			adversaries++
		}
	}
	// ~30% of 1000 with generous slack.
	if adversaries < 200 || adversaries > 400 {
		t.Errorf("Fraction=0.3 selected %d/1000 adversaries", adversaries)
	}
	if (Byzantine{Fraction: 0}).IsAdversary(0) {
		t.Error("zero fraction must select nobody")
	}
	if !(Byzantine{Fraction: 1}).IsAdversary(42) {
		t.Error("fraction 1 must select everybody")
	}
}

func TestByzantineSignFlip(t *testing.T) {
	payload, ref := byzPair()
	b := Byzantine{Kind: ByzSignFlip, Fraction: 1, Scale: 2}
	b.Corrupt(0, 0, payload, ref)
	// want ref - 2*(orig - ref); orig emb[0]=1, ref emb[0]=0 → -2.
	wantEmb := []float64{-2, -1, 0, 1, 2, 3}
	for i, got := range payload.Get("emb") {
		if math.Abs(got-wantEmb[i]) > 1e-12 {
			t.Fatalf("emb[%d] = %g, want %g", i, got, wantEmb[i])
		}
	}
	wantBias := []float64{-1, 1}
	for i, got := range payload.Get("bias") {
		if math.Abs(got-wantBias[i]) > 1e-12 {
			t.Fatalf("bias[%d] = %g, want %g", i, got, wantBias[i])
		}
	}
}

func TestByzantineCollude(t *testing.T) {
	payload, ref := byzPair()
	b := Byzantine{Kind: ByzCollude, Fraction: 1}
	b.Corrupt(3, 1, payload, ref)
	for i, got := range payload.Get("emb") {
		if got != ref.Get("emb")[i] {
			t.Fatalf("collude emb[%d] = %g, want echo of ref %g", i, got, ref.Get("emb")[i])
		}
	}
}

func TestByzantineScaledNoiseDeterministic(t *testing.T) {
	b := Byzantine{Kind: ByzScaledNoise, Fraction: 1, Scale: 0.1, Seed: 9}
	p1, ref := byzPair()
	b.Corrupt(2, 4, p1, ref)
	p2, _ := byzPair()
	b.Corrupt(2, 4, p2, ref)
	for i, got := range p1.Get("emb") {
		if got != p2.Get("emb")[i] {
			t.Fatalf("noise not deterministic at emb[%d]: %g vs %g", i, got, p2.Get("emb")[i])
		}
	}
	p3, _ := byzPair()
	b.Corrupt(3, 4, p3, ref) // different round → different stream
	same := true
	for i, got := range p3.Get("emb") {
		if got != p1.Get("emb")[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("noise stream should differ across rounds")
	}
}
