// Package attack implements the paper's Community Inference Attack
// (CIA, §IV) and the two proxy attacks it is compared against: an
// entropy-based membership inference attack (MIA, §VIII-C1) and a
// gradient-classifier attribute inference attack (AIA, §VIII-C2).
//
// CIA is deliberately protocol-agnostic: it consumes (sender, payload)
// observations — the models an honest-but-curious adversary receives —
// and maintains per-sender momentum-averaged models (Eq. 4) that it
// ranks by the relevance score they assign to the target item sets
// (Eq. 3). The same implementation serves the FL server adversary
// (Alg. 1), a single gossip node (Alg. 2), and a colluding coalition
// (one CIA instance fed by every colluder's observations, which is
// exactly the Alg. 2 line-14 multicast).
package attack

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"github.com/collablearn/ciarec/internal/evalx"
	"github.com/collablearn/ciarec/internal/param"
)

// Evaluator scores a loaded model state against registered targets.
//
// Concurrency contract: implementations need NOT be safe for
// concurrent use. CIA partitions senders across at most Workers
// goroutines, gives each goroutine its own evaluator (the configured
// Eval plus instances from NewEval), and guarantees that Load and the
// Score calls that follow it are issued from a single goroutine at a
// time per evaluator. Evaluators sharing read-only state (e.g. target
// item sets) is fine; sharing a mutable scratch model is not.
type Evaluator interface {
	// Load installs a (momentum-averaged) model state for scoring.
	Load(state *param.Set)
	// Score returns the relevance Ŷ of the loaded state, attributed to
	// sender, for registered target index t. Higher = more relevant.
	Score(sender, t int) float64
	// NumTargets returns the number of registered targets.
	NumTargets() int
}

// Config parameterizes one CIA instance.
type Config struct {
	// Beta is the momentum coefficient β of Eq. 4 (paper default 0.99;
	// 0 disables momentum, the Table-VI ablation).
	Beta float64
	// K is the inferred community size.
	K int
	// NumUsers is the number of protocol participants.
	NumUsers int
	// Eval scores momentum states (required).
	Eval Evaluator
	// NewEval optionally supplies extra evaluators for parallel
	// scoring; Workers > 1 requires it.
	NewEval func() Evaluator
	// Workers bounds scoring concurrency. 0 defaults to
	// runtime.NumCPU() when NewEval is set (parallel scoring is
	// available) and to 1 otherwise; negative forces serial.
	Workers int
}

// CIA is one adversary instance (or coalition).
type CIA struct {
	cfg     Config
	states  map[int]*param.Set // sender → momentum state v_u
	scores  [][]float64        // [target][sender]
	hasSeen []bool             // sender observed at least once
	dirty   map[int]struct{}   // senders whose state changed since last EndRound
	// extraEvals caches the NewEval-built evaluators for workers 1..W-1
	// across rounds (worker 0 uses cfg.Eval); evaluators carry no
	// state between rounds, so building them once is enough.
	extraEvals []Evaluator
}

// New builds a CIA instance. It panics on an invalid configuration
// (attacks are constructed by experiments; misconfiguration is a bug).
func New(cfg Config) *CIA {
	if cfg.Eval == nil {
		panic("attack: Config.Eval is required")
	}
	if cfg.K <= 0 || cfg.NumUsers <= 0 {
		panic(fmt.Sprintf("attack: invalid K=%d NumUsers=%d", cfg.K, cfg.NumUsers))
	}
	if cfg.Beta < 0 || cfg.Beta >= 1 {
		panic(fmt.Sprintf("attack: Beta %v out of [0,1)", cfg.Beta))
	}
	if cfg.Workers == 0 {
		if cfg.NewEval != nil {
			cfg.Workers = runtime.NumCPU()
		} else {
			cfg.Workers = 1
		}
	}
	if cfg.Workers < 0 {
		cfg.Workers = 1
	}
	if cfg.Workers > 1 && cfg.NewEval == nil {
		panic("attack: Workers > 1 requires NewEval")
	}
	nt := cfg.Eval.NumTargets()
	scores := make([][]float64, nt)
	for t := range scores {
		scores[t] = make([]float64, cfg.NumUsers)
	}
	return &CIA{
		cfg:     cfg,
		states:  make(map[int]*param.Set),
		scores:  scores,
		hasSeen: make([]bool, cfg.NumUsers),
		dirty:   make(map[int]struct{}),
	}
}

// Observe folds a received model payload into the sender's momentum
// state (Alg. 1/2 lines 7-11): v_u ← β·v_u + (1-β)·Θ_u, with v_u
// initialized to the first observation.
func (c *CIA) Observe(sender int, payload *param.Set) {
	st, ok := c.states[sender]
	if !ok {
		c.states[sender] = payload.Clone()
	} else {
		st.Lerp(c.cfg.Beta, payload)
	}
	c.hasSeen[sender] = true
	c.dirty[sender] = struct{}{}
}

// EndRound re-scores every sender whose momentum state changed since
// the previous call (Alg. 1/2 line 12). Call once per protocol round
// before reading predictions.
func (c *CIA) EndRound() {
	if len(c.dirty) == 0 {
		return
	}
	senders := make([]int, 0, len(c.dirty))
	//lint:sorted keys are drained and sorted below so worker chunking is deterministic; scores are keyed writes of pure (s, t) functions
	for s := range c.dirty {
		senders = append(senders, s)
	}
	clear(c.dirty)
	// Sort so the parallel chunk partition (and any future
	// order-sensitive consumer) cannot depend on map iteration order.
	sort.Ints(senders)

	if c.cfg.Workers == 1 || len(senders) < 2*c.cfg.Workers {
		c.scoreSenders(c.cfg.Eval, senders)
		return
	}
	var wg sync.WaitGroup
	chunk := (len(senders) + c.cfg.Workers - 1) / c.cfg.Workers
	for w := 0; w < c.cfg.Workers; w++ {
		lo := w * chunk
		if lo >= len(senders) {
			break
		}
		hi := lo + chunk
		if hi > len(senders) {
			hi = len(senders)
		}
		ev := c.cfg.Eval
		if w > 0 {
			for len(c.extraEvals) < w {
				c.extraEvals = append(c.extraEvals, c.cfg.NewEval())
			}
			ev = c.extraEvals[w-1]
		}
		wg.Add(1)
		go func(ev Evaluator, part []int) {
			defer wg.Done()
			c.scoreSenders(ev, part)
		}(ev, senders[lo:hi])
	}
	wg.Wait()
}

func (c *CIA) scoreSenders(ev Evaluator, senders []int) {
	for _, s := range senders {
		ev.Load(c.states[s])
		for t := range c.scores {
			c.scores[t][s] = ev.Score(s, t)
		}
	}
}

// Predict returns the current inferred community Ĉ for target t: the K
// observed senders with the highest relevance scores (Eq. 3; Alg. 1/2
// AddSorted + Slice).
func (c *CIA) Predict(t int) []int {
	ranked := evalx.SortedByScoreDesc(c.scores[t], c.hasSeen)
	if len(ranked) > c.cfg.K {
		ranked = ranked[:c.cfg.K]
	}
	return ranked
}

// Accuracies returns Accuracy@R (Eq. 6) for every target against the
// provided ground-truth communities (truths[t] for target t).
func (c *CIA) Accuracies(truths []map[int]struct{}) []float64 {
	if len(truths) != len(c.scores) {
		panic(fmt.Sprintf("attack: %d truths for %d targets", len(truths), len(c.scores)))
	}
	out := make([]float64, len(truths))
	for t := range truths {
		out[t] = evalx.Accuracy(c.Predict(t), truths[t])
	}
	return out
}

// Seen returns the set of senders observed so far (the input to the
// accuracy upper bound of §V-C).
func (c *CIA) Seen() map[int]struct{} {
	out := make(map[int]struct{}, len(c.states))
	for s := range c.states {
		out[s] = struct{}{}
	}
	return out
}

// NumObserved returns how many distinct senders have been observed.
func (c *CIA) NumObserved() int { return len(c.states) }

// State returns the momentum state for a sender (nil if never
// observed). Exposed for colluder forwarding and tests; callers must
// not mutate the returned set.
func (c *CIA) State(sender int) *param.Set { return c.states[sender] }
