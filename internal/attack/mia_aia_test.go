package attack

import (
	"testing"

	"github.com/collablearn/ciarec/internal/evalx"
	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/model"
)

func TestMIAValidation(t *testing.T) {
	d := attackDataset(t)
	scratch := model.NewGMF(d.NumUsers, d.NumItems, 8, 0)
	for name, f := range map[string]func(){
		"bad rho":    func() { NewMIA(0, 5, scratch, [][]int{{0}}, d) },
		"bad k":      func() { NewMIA(0.5, 0, scratch, [][]int{{0}}, d) },
		"no targets": func() { NewMIA(0.5, 5, scratch, nil, d) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s should panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMIADetectsCommunitiesAboveRandom(t *testing.T) {
	d := attackDataset(t)
	payloads := trainedModels(t, d, 12)
	const k = 8
	mia := NewMIA(0.6, k, model.NewGMF(d.NumUsers, d.NumItems, 8, 0), allTargets(d), d)
	mia.Guarded = true
	for u, p := range payloads {
		mia.Observe(u, p)
	}
	truths := evalx.TrueCommunities(d, k)
	mean := mathx.Mean(mia.Accuracies(truths))
	random := evalx.RandomBound(k, d.NumUsers)
	// The guarded MIA proxy is the stronger variant; above random with
	// a modest margin is the bar.
	if mean < 1.3*random {
		t.Fatalf("MIA proxy accuracy %.3f not above random %.3f", mean, random)
	}
}

// The unguarded (paper-faithful) entropy threshold also fires on
// confidently-rejected items; the guarded variant must dominate it.
func TestGuardedMIABeatsUnguarded(t *testing.T) {
	d := attackDataset(t)
	payloads := trainedModels(t, d, 12)
	const k = 8
	plain := NewMIA(0.6, k, model.NewGMF(d.NumUsers, d.NumItems, 8, 0), allTargets(d), d)
	guarded := NewMIA(0.6, k, model.NewGMF(d.NumUsers, d.NumItems, 8, 0), allTargets(d), d)
	guarded.Guarded = true
	for u, p := range payloads {
		plain.Observe(u, p)
		guarded.Observe(u, p)
	}
	truths := evalx.TrueCommunities(d, k)
	if mathx.Mean(guarded.Accuracies(truths)) < mathx.Mean(plain.Accuracies(truths)) {
		t.Fatal("guard should not weaken the MIA proxy")
	}
}

// The paper's Table VIII finding: CIA beats the MIA proxy on the same
// observations.
func TestCIABeatsMIAProxy(t *testing.T) {
	d := attackDataset(t)
	payloads := trainedModels(t, d, 12)
	const k = 8
	targets := allTargets(d)
	truths := evalx.TrueCommunities(d, k)

	cia := New(Config{
		Beta: 0.9, K: k, NumUsers: d.NumUsers,
		Eval: NewRecommenderEval(model.NewGMF(d.NumUsers, d.NumItems, 8, 0), targets),
	})
	mia := NewMIA(0.6, k, model.NewGMF(d.NumUsers, d.NumItems, 8, 0), targets, d)
	for u, p := range payloads {
		cia.Observe(u, p)
		mia.Observe(u, p)
	}
	cia.EndRound()
	ciaAcc := mathx.Mean(cia.Accuracies(truths))
	miaAcc := mathx.Mean(mia.Accuracies(truths))
	if ciaAcc <= miaAcc {
		t.Fatalf("CIA (%.3f) did not beat MIA proxy (%.3f)", ciaAcc, miaAcc)
	}
}

func TestMIAPrecisionBookkeeping(t *testing.T) {
	d := attackDataset(t)
	payloads := trainedModels(t, d, 12)
	mia := NewMIA(0.6, 8, model.NewGMF(d.NumUsers, d.NumItems, 8, 0), allTargets(d), d)
	if mia.Precision() != 0 {
		t.Fatal("precision before any observation must be 0")
	}
	for u, p := range payloads {
		mia.Observe(u, p)
	}
	prec := mia.Precision()
	if prec < 0 || prec > 1 {
		t.Fatalf("precision out of range: %v", prec)
	}
}

func TestAIAConfigErrors(t *testing.T) {
	d := attackDataset(t)
	g := model.NewGMF(d.NumUsers, d.NumItems, 8, 0)
	r := mathx.NewRand(1)
	cases := []AIAConfig{
		{Target: []int{1}, K: 5},          // no Rand
		{Target: nil, K: 5, Rand: r},      // no target
		{Target: []int{1}, K: 0, Rand: r}, // bad K
	}
	for i, cfg := range cases {
		if _, err := TrainAIA(g, d, cfg); err == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

func TestAIADetectsCommunityAboveRandom(t *testing.T) {
	d := attackDataset(t)
	// Warm up a shared global model so item embeddings carry signal.
	global := model.NewGMF(d.NumUsers, d.NumItems, 8, 0)
	r := mathx.NewRand(2)
	for e := 0; e < 6; e++ {
		for u := 0; u < d.NumUsers; u++ {
			global.TrainLocal(d, u, model.TrainOptions{Rand: r})
		}
	}
	const k = 8
	targetUser := 0
	target := d.Train[targetUser]
	truth := evalx.TrueCommunity(d, target, k)

	aia, err := TrainAIA(global, d, AIAConfig{
		Target: target, K: k, Members: 15, NonMembers: 15,
		ClassifierEpochs: 25, Rand: mathx.NewRand(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	// Simulate one FL round of uploads from the warm global model.
	for u := 0; u < d.NumUsers; u++ {
		local := global.Clone()
		local.TrainLocal(d, u, model.TrainOptions{Rand: r})
		aia.Observe(u, local.Params().Clone())
	}
	acc := aia.Accuracy(truth)
	random := evalx.RandomBound(k, d.NumUsers)
	if acc < random {
		t.Fatalf("AIA accuracy %.3f below random %.3f", acc, random)
	}
	if got := len(aia.Predict()); got != k {
		t.Fatalf("Predict size %d, want %d", got, k)
	}
}

func TestAIAIgnoresPayloadsWithoutItemEntry(t *testing.T) {
	d := attackDataset(t)
	g := model.NewGMF(d.NumUsers, d.NumItems, 8, 0)
	aia, err := TrainAIA(g, d, AIAConfig{
		Target: d.Train[0], K: 5, Members: 4, NonMembers: 4,
		ClassifierEpochs: 2, Rand: mathx.NewRand(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	empty := g.Params().Filter(model.GMFBias)
	aia.Observe(3, empty)
	if len(aia.Predict()) != 0 {
		t.Fatal("AIA scored a payload without item embeddings")
	}
}

func TestCostModelOrdering(t *testing.T) {
	// With paper-like magnitudes, AIA must be the most expensive and
	// CIA at most as costly as MIA when |V_target| <= Dmax (§VIII-D).
	cm := CostModel{
		Users: 943, TargetSize: 100, DMax: 500,
		TrainModel: 1e6, InferModel: 10,
		TrainClassifier: 2e6, InferClassifier: 10,
		FictiveUsers: 40,
	}
	cia, mia, aia := cm.CIACost(), cm.MIACost(), cm.AIACost()
	if cia > mia {
		t.Fatalf("CIA cost %v exceeds MIA %v despite |Vt| <= Dmax", cia, mia)
	}
	if aia < cia || aia < mia {
		t.Fatalf("AIA (%v) should dominate CIA (%v) and MIA (%v)", aia, cia, mia)
	}
	if cm.Table() == "" {
		t.Fatal("empty cost table")
	}
}
