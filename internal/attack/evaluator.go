package attack

import (
	"fmt"
	"math/rand/v2"

	"github.com/collablearn/ciarec/internal/model"
	"github.com/collablearn/ciarec/internal/param"
)

// RecommenderEval is the Evaluator used against recommendation models.
// It installs observed parameter payloads into a scratch model and
// computes the relevance score Ŷ(Θ_u, V_target).
//
// Two modes:
//
//   - full-model mode (the default): the sender's own user-embedding
//     row inside the observed model is used, matching §IV-B;
//   - fictive-user mode (Share-less adaptation, §IV-C): observed
//     payloads carry no user embeddings, so relevance is computed with
//     the adversary's fictive user embedding e_A fitted per target on
//     a fabricated interaction matrix R_A.
type RecommenderEval struct {
	scratch model.Recommender
	targets [][]int
	// fictive[t] is e_A for target t; nil selects full-model mode.
	fictive [][]float64
}

var _ Evaluator = (*RecommenderEval)(nil)

// NewRecommenderEval builds a full-model evaluator. scratch must be a
// dedicated model instance (its parameters are overwritten on Load).
func NewRecommenderEval(scratch model.Recommender, targets [][]int) *RecommenderEval {
	if len(targets) == 0 {
		panic("attack: NewRecommenderEval requires at least one target")
	}
	return &RecommenderEval{scratch: scratch, targets: targets}
}

// NewShareLessEval builds a fictive-user evaluator for the Share-less
// setting. Call RefreshFictive before the first Score (and whenever
// the adversary wants to re-fit e_A against fresher item embeddings).
func NewShareLessEval(scratch model.Recommender, targets [][]int) *RecommenderEval {
	ev := NewRecommenderEval(scratch, targets)
	ev.fictive = make([][]float64, len(targets))
	return ev
}

// ShareLess reports whether the evaluator is in fictive-user mode.
func (e *RecommenderEval) ShareLess() bool { return e.fictive != nil }

// NumTargets implements Evaluator.
func (e *RecommenderEval) NumTargets() int { return len(e.targets) }

// Target returns the item set of target t.
func (e *RecommenderEval) Target(t int) []int { return e.targets[t] }

// Load implements Evaluator: installs the payload into the scratch
// model. Partial payloads (Share-less) overwrite only the entries they
// carry; the remaining scratch entries keep their previous values,
// which is irrelevant for scoring because fictive-user mode never
// reads them.
func (e *RecommenderEval) Load(state *param.Set) {
	if e.scratch.Params().CopyShared(state) == 0 {
		panic("attack: payload shares no entries with the scratch model")
	}
}

// Score implements Evaluator.
func (e *RecommenderEval) Score(sender, t int) float64 {
	if e.fictive == nil {
		return e.scratch.Relevance(sender, e.targets[t])
	}
	vec := e.fictive[t]
	if vec == nil {
		panic(fmt.Sprintf("attack: fictive user for target %d not fitted; call RefreshFictive", t))
	}
	return e.scratch.RelevanceWithUserVec(vec, e.targets[t])
}

// RefreshFictive fits the fictive user embedding e_A for every target
// against the item embeddings in state (§IV-C): the adversary builds a
// fabricated interaction matrix R_A containing exactly the target
// items and trains a user embedding on it, holding everything else
// fixed. epochs controls the fit length (the paper's adversary is
// cheap; a handful of epochs suffices).
func (e *RecommenderEval) RefreshFictive(state *param.Set, epochs int, r *rand.Rand) {
	if e.fictive == nil {
		panic("attack: RefreshFictive on a full-model evaluator")
	}
	e.Load(state)
	for t, target := range e.targets {
		e.fictive[t] = e.scratch.FitFictiveUser(target, model.TrainOptions{
			Epochs: epochs,
			Rand:   r,
		})
	}
}

// RefreshFictiveOne re-fits the fictive user for a single target
// against the item embeddings in state. Gossip adversaries use this:
// each adversary placement refreshes only its own target against its
// own node's parameters.
func (e *RecommenderEval) RefreshFictiveOne(t int, state *param.Set, epochs int, r *rand.Rand) {
	if e.fictive == nil {
		panic("attack: RefreshFictiveOne on a full-model evaluator")
	}
	e.Load(state)
	e.fictive[t] = e.scratch.FitFictiveUser(e.targets[t], model.TrainOptions{
		Epochs: epochs,
		Rand:   r,
	})
}

// SetFictive installs the same explicit user vector as every target's
// fictive embedding (ablation baselines use a zero vector here). The
// slice is copied.
func (e *RecommenderEval) SetFictive(vec []float64) {
	if e.fictive == nil {
		panic("attack: SetFictive on a full-model evaluator")
	}
	for t := range e.fictive {
		e.fictive[t] = append([]float64(nil), vec...)
	}
}

// CloneFictive copies fitted fictive vectors from src (used to share
// one fit across parallel evaluators).
func (e *RecommenderEval) CloneFictive(src *RecommenderEval) {
	if e.fictive == nil || src.fictive == nil {
		panic("attack: CloneFictive requires share-less evaluators")
	}
	for t, v := range src.fictive {
		e.fictive[t] = append([]float64(nil), v...)
	}
}
