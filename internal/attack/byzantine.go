package attack

import (
	"fmt"
	"strconv"
	"strings"

	"github.com/collablearn/ciarec/internal/mathx"
	"github.com/collablearn/ciarec/internal/param"
)

// ByzKind selects a Byzantine corruption strategy.
type ByzKind int

const (
	// ByzSignFlip reflects the honest update around the received model:
	// the upload becomes ref - Scale*(upload - ref), i.e. the client
	// pushes the aggregate in exactly the wrong direction (Scale = 1 is
	// the classic sign-flipping attacker, larger scales amplify it).
	ByzSignFlip ByzKind = iota
	// ByzScaledNoise adds N(0, Scale²) noise to every uploaded
	// coordinate, drawn from a counter-based stream — an unstructured
	// poisoner that degrades the aggregate without a preferred
	// direction.
	ByzScaledNoise
	// ByzCollude makes the adversaries colluding CIA senders: each
	// echoes the model it received back verbatim. The upload carries no
	// local signal (free-riding that dilutes honest updates), which is
	// the sender-side half of a colluding inference coalition — the
	// colluders' outgoing traffic is indistinguishable from the
	// broadcast while their received models feed a shared CIA instance.
	ByzCollude
)

// String returns the spec token for the kind.
func (k ByzKind) String() string {
	switch k {
	case ByzSignFlip:
		return "sign-flip"
	case ByzScaledNoise:
		return "scaled-noise"
	case ByzCollude:
		return "collude"
	default:
		return fmt.Sprintf("ByzKind(%d)", int(k))
	}
}

// Byzantine-decision stream tags (namespaced away from the transport
// fault and churn tags so a shared seed still separates families).
const (
	byzTagSelect uint64 = iota + 0x20
	byzTagNoise
)

// Byzantine is a declarative, seed-driven active-adversary population:
// a fixed Fraction of participants — chosen as a pure function of
// (Seed, participant), so the set is identical on every backend and
// worker count — corrupt every payload they send. The corruption
// itself is deterministic too: sign-flips are algebra, and the noise
// attack draws from a counter-based per-(round, participant) stream.
// Selection and corruption consume no simulator RNG, so a nil (or
// zero-Fraction) adversary leaves a run byte-identical.
type Byzantine struct {
	// Kind selects the corruption strategy.
	Kind ByzKind
	// Fraction of participants that are adversarial, in [0, 1].
	Fraction float64
	// Scale parameterizes the strategy: the reflection gain for
	// sign-flip, the noise stddev for scaled-noise (ignored by
	// collude). 0 means the default, 1.
	Scale float64
	// Seed drives adversary selection and the noise streams.
	Seed uint64
}

// DefaultByzantine is the population behind the bare "default" spec:
// 10% sign-flipping adversaries, unit scale, seed 1.
func DefaultByzantine() Byzantine {
	return Byzantine{Kind: ByzSignFlip, Fraction: 0.1, Scale: 1, Seed: 1}
}

// scale resolves the "0 means 1" default.
func (b Byzantine) scale() float64 {
	if b.Scale == 0 {
		return 1
	}
	return b.Scale
}

// Enabled reports whether any participant can be adversarial.
func (b Byzantine) Enabled() bool { return b.Fraction > 0 }

// Validate checks the population's parameters.
func (b Byzantine) Validate() error {
	switch b.Kind {
	case ByzSignFlip, ByzScaledNoise, ByzCollude:
	default:
		return fmt.Errorf("attack: byzantine: unknown kind %d", int(b.Kind))
	}
	if b.Fraction < 0 || b.Fraction > 1 {
		return fmt.Errorf("attack: byzantine: fraction %g outside [0, 1]", b.Fraction)
	}
	if b.Scale < 0 {
		return fmt.Errorf("attack: byzantine: scale %g is negative", b.Scale)
	}
	return nil
}

// IsAdversary reports whether the participant is in the adversarial
// population — a pure function of (Seed, id), constant across rounds
// (a compromised client stays compromised).
func (b Byzantine) IsAdversary(id int) bool {
	if b.Fraction <= 0 {
		return false
	}
	if b.Fraction >= 1 {
		return true
	}
	lo, _ := mathx.StreamSeeds(b.Seed, byzTagSelect, 0, uint64(id))
	return float64(lo>>11)/(1<<53) < b.Fraction
}

// Corrupt applies the adversary's strategy to the outgoing payload in
// place. ref is the model the participant received this round (the
// broadcast / pushed state it would echo or reflect around); entries
// of the payload missing from ref are left untouched. Deterministic:
// the only randomness is the scaled-noise stream keyed by
// (Seed, round, id).
func (b Byzantine) Corrupt(round, id int, payload, ref *param.Set) {
	switch b.Kind {
	case ByzSignFlip:
		s := b.scale()
		for i := 0; i < payload.Len(); i++ {
			e := payload.At(i)
			if !ref.Has(e.Name) {
				continue
			}
			// e.Data ← (1+s)·ref − s·e.Data, i.e. ref − s·(e.Data − ref).
			mathx.Scale(-s, e.Data)
			mathx.Axpy(1+s, ref.Get(e.Name), e.Data)
		}
	case ByzScaledNoise:
		rng := mathx.NewStreamRand(b.Seed, byzTagNoise, uint64(round), uint64(id))
		payload.AddNoise(rng.NormFloat64, b.scale())
	case ByzCollude:
		payload.CopyShared(ref)
	}
}

// String renders the population in the form ParseByzantine accepts.
func (b Byzantine) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "kind=%s,frac=%g", b.Kind, b.Fraction)
	if b.Scale > 0 {
		fmt.Fprintf(&sb, ",scale=%g", b.Scale)
	}
	fmt.Fprintf(&sb, ",seed=%d", b.Seed)
	return sb.String()
}

// ParseByzantine parses a comma-separated key=value adversary spec,
// e.g. "kind=sign-flip,frac=0.1,scale=2,seed=3". "default" selects
// DefaultByzantine verbatim; an empty string is the zero (disabled)
// population.
func ParseByzantine(spec string) (Byzantine, error) {
	var b Byzantine
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return b, nil
	}
	if spec == "default" {
		return DefaultByzantine(), nil
	}
	for _, kv := range strings.Split(spec, ",") {
		kv = strings.TrimSpace(kv)
		k, v, ok := strings.Cut(kv, "=")
		if !ok {
			return b, fmt.Errorf("attack: byzantine spec %q: want key=value", kv)
		}
		var err error
		switch k {
		case "kind":
			switch v {
			case "sign-flip":
				b.Kind = ByzSignFlip
			case "scaled-noise":
				b.Kind = ByzScaledNoise
			case "collude":
				b.Kind = ByzCollude
			default:
				err = fmt.Errorf("unknown kind %q (want sign-flip, scaled-noise or collude)", v)
			}
		case "frac":
			b.Fraction, err = strconv.ParseFloat(v, 64)
		case "scale":
			b.Scale, err = strconv.ParseFloat(v, 64)
		case "seed":
			b.Seed, err = strconv.ParseUint(v, 10, 64)
		default:
			return b, fmt.Errorf("attack: byzantine spec: unknown key %q", k)
		}
		if err != nil {
			return b, fmt.Errorf("attack: byzantine spec %q: %w", kv, err)
		}
	}
	if err := b.Validate(); err != nil {
		return b, err
	}
	return b, nil
}
