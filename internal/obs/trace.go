// Package obs is the repository's zero-dependency observability
// layer: a low-overhead span tracer for the protocol simulators'
// round phases and a flat metrics registry unifying the counters that
// used to live scattered across transport.Stats, fed.Resilience,
// gossip.Resilience and the parameter pool.
//
// The package is deliberately a leaf: it imports nothing from the
// simulation packages, so fed, gossip, transport and experiments can
// all depend on it without cycles. It is also deliberately OUTSIDE
// the deterministic-package set (see internal/analysis/detpkg.go):
// wall-clock reads are confined here, and the obsleak analyzer
// enforces that no value produced by this package ever flows back
// into deterministic round state — deterministic packages may hand
// data *to* obs (record spans, register counters) and may hold
// opaque obs tokens (Time, *Tracer, *Registry, ...), but may never
// extract a non-obs value *from* it. That contract is what keeps all
// golden hashes byte-identical with tracing and metrics enabled (see
// OBSERVABILITY.md).
//
// All Tracer and Registry methods tolerate a nil receiver: a
// simulation configured without observability pays one nil check per
// instrumentation point and nothing else.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// Phase labels one round phase of a protocol simulation.
type Phase uint8

const (
	// PhaseTrain is a participant's local-training step.
	PhaseTrain Phase = iota
	// PhaseEncode is the server-side broadcast encode (fed) or a
	// node's outgoing-payload construction (gossip).
	PhaseEncode
	// PhaseSend is a participant's upload/push through the transport.
	PhaseSend
	// PhaseAggregate is the server's (or a node's) model aggregation.
	PhaseAggregate
	// PhaseBroadcast is a participant's download of the round's
	// global-model broadcast.
	PhaseBroadcast
	// PhaseEval is a round's utility evaluation sweep.
	PhaseEval

	numPhases
)

var phaseNames = [numPhases]string{
	"train", "encode", "send", "aggregate", "broadcast", "eval",
}

func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", int(p))
}

// Time is an opaque monotonic timestamp token issued by Tracer.Start.
// Deterministic packages may hold and pass it back to the tracer but
// can do nothing else with it — the obsleak analyzer rejects
// conversions of obs types to non-obs types in those packages, so a
// wall-clock reading can never leak into round state through it.
type Time int64

// RoundLevel is the participant value for spans that belong to the
// round as a whole (broadcast encode, aggregation, evaluation) rather
// than to one participant.
const RoundLevel = -1

// span is one recorded interval, relative to the tracer's epoch.
type span struct {
	start       int64 // nanoseconds since epoch
	dur         int64 // nanoseconds
	round       int32
	participant int32
	phase       Phase
}

// ring is one writer's bounded span buffer. Writers are usually
// distinct goroutines (one per simulation worker), but nothing
// prevents two simulations from sharing a ring index, so each ring
// carries its own mutex; the common case is uncontended.
type ring struct {
	mu      sync.Mutex
	spans   []span
	next    int // overwrite cursor, meaningful once the ring is full
	dropped int64
}

func (r *ring) record(s span, capacity int) {
	r.mu.Lock()
	if len(r.spans) < capacity {
		r.spans = append(r.spans, s)
	} else {
		r.spans[r.next] = s
		r.next++
		if r.next == capacity {
			r.next = 0
		}
		r.dropped++
	}
	r.mu.Unlock()
}

// snapshot returns the ring's live spans, oldest first.
func (r *ring) snapshot() ([]span, int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]span, 0, len(r.spans))
	// next > 0 only after overwrites began, in which case spans[next]
	// is the oldest live span; otherwise (filling, or the cursor
	// exactly back at 0) index order is already oldest-first.
	out = append(out, r.spans[r.next:]...)
	out = append(out, r.spans[:r.next]...)
	return out, r.dropped
}

// DefaultSpansPerRing is the per-ring span capacity NewTracer uses
// when given 0: enough for every phase of a few thousand participant
// rounds per worker before the ring starts dropping the oldest spans.
const DefaultSpansPerRing = 1 << 14

// Tracer records phase spans into per-worker ring buffers. The write
// path does no allocation after a ring reaches capacity and consumes
// no RNG; wall-clock reads happen only inside Start and Span. A nil
// *Tracer is a valid disabled tracer: Start and Span return
// immediately.
type Tracer struct {
	epoch    time.Time
	capacity int

	mu    sync.RWMutex
	rings []*ring
}

// NewTracer returns a tracer with the given per-ring span capacity
// (0 means DefaultSpansPerRing).
func NewTracer(spansPerRing int) *Tracer {
	if spansPerRing <= 0 {
		spansPerRing = DefaultSpansPerRing
	}
	return &Tracer{epoch: time.Now(), capacity: spansPerRing}
}

// Start returns the current tracer time, to be passed to Span when
// the phase completes. On a nil tracer it returns 0 without touching
// the clock.
func (t *Tracer) Start() Time {
	if t == nil {
		return 0
	}
	return Time(time.Since(t.epoch))
}

// Span records one completed phase interval on the given ring
// (instrumentation passes its worker index; coordinators and helper
// goroutines use indexes past the worker count — rings grow on
// demand). participant is the client/node id, or RoundLevel for
// round-scoped phases. No-op on a nil tracer.
func (t *Tracer) Span(ringIdx int, phase Phase, round, participant int, start Time) {
	if t == nil {
		return
	}
	end := time.Since(t.epoch)
	t.ring(ringIdx).record(span{
		start:       int64(start),
		dur:         int64(end) - int64(start),
		round:       int32(round),
		participant: int32(participant),
		phase:       phase,
	}, t.capacity)
}

func (t *Tracer) ring(i int) *ring {
	if i < 0 {
		i = 0
	}
	t.mu.RLock()
	if i < len(t.rings) {
		r := t.rings[i]
		t.mu.RUnlock()
		return r
	}
	t.mu.RUnlock()
	t.mu.Lock()
	for len(t.rings) <= i {
		t.rings = append(t.rings, &ring{})
	}
	r := t.rings[i]
	t.mu.Unlock()
	return r
}

// SpanRecord is one exported span, in the tracer's epoch-relative
// clock.
type SpanRecord struct {
	Phase       Phase
	Round       int
	Participant int // RoundLevel for round-scoped spans
	Ring        int
	Start       time.Duration
	Dur         time.Duration
}

// Spans merges every ring's live spans, ordered by start time (ties
// broken by ring index, so the merge is stable across calls).
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.RLock()
	rings := append([]*ring(nil), t.rings...)
	t.mu.RUnlock()
	var out []SpanRecord
	for ri, r := range rings {
		snap, _ := r.snapshot()
		for _, s := range snap {
			out = append(out, SpanRecord{
				Phase:       s.phase,
				Round:       int(s.round),
				Participant: int(s.participant),
				Ring:        ri,
				Start:       time.Duration(s.start),
				Dur:         time.Duration(s.dur),
			})
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Start != out[j].Start {
			return out[i].Start < out[j].Start
		}
		return out[i].Ring < out[j].Ring
	})
	return out
}

// Dropped returns the total number of spans overwritten by ring
// wrap-around (0 on a nil tracer).
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.RLock()
	rings := append([]*ring(nil), t.rings...)
	t.mu.RUnlock()
	var total int64
	for _, r := range rings {
		_, d := r.snapshot()
		total += d
	}
	return total
}

// Recorded returns the number of live (not yet overwritten) spans.
func (t *Tracer) Recorded() int64 {
	if t == nil {
		return 0
	}
	return int64(len(t.Spans()))
}

// WriteJSONL writes the merged spans one JSON object per line:
//
//	{"phase":"train","round":3,"participant":17,"ring":2,"start_us":1042.7,"dur_us":311.0}
func (t *Tracer) WriteJSONL(w io.Writer) error {
	for _, s := range t.Spans() {
		line := struct {
			Phase       string  `json:"phase"`
			Round       int     `json:"round"`
			Participant int     `json:"participant"`
			Ring        int     `json:"ring"`
			StartUS     float64 `json:"start_us"`
			DurUS       float64 `json:"dur_us"`
		}{
			Phase:       s.Phase.String(),
			Round:       s.Round,
			Participant: s.Participant,
			Ring:        s.Ring,
			StartUS:     float64(s.Start) / float64(time.Microsecond),
			DurUS:       float64(s.Dur) / float64(time.Microsecond),
		}
		b, err := json.Marshal(line)
		if err != nil {
			return err
		}
		if _, err := w.Write(append(b, '\n')); err != nil {
			return err
		}
	}
	return nil
}

// chromeEvent is one Chrome trace_event object: a complete ("X") slice
// with microsecond timestamps, pid 1 and one tid per participant
// (tid 0 carries the round-level spans), so chrome://tracing and
// Perfetto render a fed round as a per-participant timeline.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace writes the merged spans in Chrome trace_event JSON
// ({"traceEvents": [...]}), loadable in chrome://tracing or
// https://ui.perfetto.dev.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	events := make([]chromeEvent, 0, len(spans)+1)
	events = append(events, chromeEvent{
		Name: "process_name", Ph: "M", PID: 1,
		Args: map[string]any{"name": "ciarec round"},
	})
	for _, s := range spans {
		tid := 0
		if s.Participant != RoundLevel {
			tid = s.Participant + 1
		}
		events = append(events, chromeEvent{
			Name: s.Phase.String(),
			Ph:   "X",
			TS:   float64(s.Start) / float64(time.Microsecond),
			Dur:  float64(s.Dur) / float64(time.Microsecond),
			PID:  1,
			TID:  tid,
			Args: map[string]any{"round": s.Round, "participant": s.Participant},
		})
	}
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{events})
}

// WriteFile writes the trace to path, picking the format from the
// extension: ".jsonl" gets one span per line, everything else the
// Chrome trace_event JSON.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.EqualFold(filepath.Ext(path), ".jsonl") {
		err = t.WriteJSONL(f)
	} else {
		err = t.WriteChromeTrace(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}
