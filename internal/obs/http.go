package obs

import (
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"
)

// Server is a running observability HTTP endpoint (metrics or pprof).
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Addr returns the bound listen address — with a ":0" request this is
// where the kernel actually put the listener, so supervisors (and the
// CI smoke) can find the endpoint.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the endpoint down, closing the listener and any open
// connections.
func (s *Server) Close() error { return s.srv.Close() }

// serve starts an HTTP server for handler on addr and returns once
// the listener is bound.
func serve(addr string, handler http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: handler, ReadHeaderTimeout: 10 * time.Second}
	go func() {
		// ErrServerClosed (and listener-closed errors) are the normal
		// shutdown path; the endpoint is best-effort by design.
		_ = srv.Serve(ln)
	}()
	return &Server{ln: ln, srv: srv}, nil
}

// Handler returns an http.Handler serving the registry in Prometheus
// text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WritePrometheus(w)
	})
}

// publishOnce guards the process-wide expvar publication: expvar
// panics on duplicate names, and a process may serve several metrics
// endpoints over its lifetime (tests do).
var publishOnce sync.Once

// ServeMetrics serves reg on addr:
//
//	/metrics       Prometheus text exposition
//	/metrics.json  the same flat snapshot as the end-of-run JSON dump
//	/debug/vars    expvar (Go runtime memstats + the ciarec snapshot)
//
// Pass ":0" (or "127.0.0.1:0") to let the kernel pick a port; the
// bound address is Server.Addr.
func ServeMetrics(addr string, reg *Registry) (*Server, error) {
	if reg == nil {
		return nil, fmt.Errorf("obs: ServeMetrics needs a non-nil registry")
	}
	publishOnce.Do(func() {
		expvar.Publish("ciarec_metrics", expvar.Func(func() any { return reg.Snapshot() }))
	})
	mux := http.NewServeMux()
	mux.Handle("/metrics", reg.Handler())
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = reg.Snapshot().WriteJSON(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	return serve(addr, mux)
}

// ServePprof serves the standard net/http/pprof handlers on addr
// under /debug/pprof/ (an explicit mux — nothing is registered on
// http.DefaultServeMux). Pass ":0" for a kernel-picked port.
func ServePprof(addr string) (*Server, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return serve(addr, mux)
}
