package obs

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestNilTracerAndRegistryAreNoOps(t *testing.T) {
	var tr *Tracer
	start := tr.Start()
	tr.Span(0, PhaseTrain, 0, 1, start)
	if got := tr.Spans(); got != nil {
		t.Fatalf("nil tracer Spans = %v, want nil", got)
	}
	if tr.Dropped() != 0 || tr.Recorded() != 0 {
		t.Fatalf("nil tracer counts non-zero")
	}

	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("y").Set(3)
	reg.Histogram("z", nil).Observe(1)
	reg.RegisterFunc("f", func() float64 { return 1 })
	if snap := reg.Snapshot(); snap != nil {
		t.Fatalf("nil registry Snapshot = %v, want nil", snap)
	}
	if err := reg.WritePrometheus(io.Discard); err != nil {
		t.Fatalf("nil registry WritePrometheus: %v", err)
	}
}

func TestTracerRecordsAndMerges(t *testing.T) {
	tr := NewTracer(16)
	s0 := tr.Start()
	tr.Span(0, PhaseEncode, 0, RoundLevel, s0)
	s1 := tr.Start()
	tr.Span(1, PhaseTrain, 0, 7, s1)
	s2 := tr.Start()
	tr.Span(0, PhaseSend, 0, 7, s2)

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for i := 1; i < len(spans); i++ {
		if spans[i].Start < spans[i-1].Start {
			t.Fatalf("spans not sorted by start: %v", spans)
		}
	}
	if spans[0].Phase != PhaseEncode || spans[0].Participant != RoundLevel {
		t.Fatalf("first span = %+v, want round-level encode", spans[0])
	}
	if tr.Dropped() != 0 {
		t.Fatalf("Dropped = %d, want 0", tr.Dropped())
	}
}

func TestTracerRingWraparound(t *testing.T) {
	const capacity = 8
	tr := NewTracer(capacity)
	for i := 0; i < 3*capacity; i++ {
		s := tr.Start()
		tr.Span(0, PhaseTrain, i, 0, s)
	}
	spans := tr.Spans()
	if len(spans) != capacity {
		t.Fatalf("got %d live spans, want %d", len(spans), capacity)
	}
	if got, want := tr.Dropped(), int64(2*capacity); got != want {
		t.Fatalf("Dropped = %d, want %d", got, want)
	}
	// The survivors are the newest writes, oldest first.
	for i, s := range spans {
		if want := 2*capacity + i; s.Round != want {
			t.Fatalf("span %d has round %d, want %d", i, s.Round, want)
		}
	}
}

func TestTracerConcurrentWriters(t *testing.T) {
	tr := NewTracer(1024)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				s := tr.Start()
				tr.Span(w, PhaseTrain, i, w, s)
			}
		}(w)
	}
	wg.Wait()
	if got := tr.Recorded(); got != 800 {
		t.Fatalf("Recorded = %d, want 800", got)
	}
}

func TestChromeTraceIsValid(t *testing.T) {
	tr := NewTracer(0)
	s := tr.Start()
	time.Sleep(time.Millisecond)
	tr.Span(0, PhaseAggregate, 2, RoundLevel, s)
	s = tr.Start()
	tr.Span(1, PhaseTrain, 2, 5, s)

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatalf("WriteChromeTrace: %v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			PID  int            `json:"pid"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 3 { // metadata + 2 spans
		t.Fatalf("got %d events, want 3", len(doc.TraceEvents))
	}
	var sawAgg, sawTrain bool
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Ph == "M":
		case ev.Name == "aggregate":
			sawAgg = true
			if ev.TID != 0 {
				t.Fatalf("round-level span on tid %d, want 0", ev.TID)
			}
			if ev.Dur < 900 { // slept 1ms; ts/dur are microseconds
				t.Fatalf("aggregate dur = %v µs, want ≥ 900", ev.Dur)
			}
		case ev.Name == "train":
			sawTrain = true
			if ev.TID != 6 {
				t.Fatalf("participant 5 on tid %d, want 6", ev.TID)
			}
		}
	}
	if !sawAgg || !sawTrain {
		t.Fatalf("missing spans in %s", buf.String())
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer(0)
	s := tr.Start()
	tr.Span(0, PhaseEval, 1, RoundLevel, s)
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 {
		t.Fatalf("got %d lines, want 1", len(lines))
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line is not JSON: %v", err)
	}
	if rec["phase"] != "eval" {
		t.Fatalf("phase = %v, want eval", rec["phase"])
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("rounds_total")
	c.Inc()
	c.Add(2)
	if c.Value() != 3 {
		t.Fatalf("counter = %d, want 3", c.Value())
	}
	if reg.Counter("rounds_total") != c {
		t.Fatalf("re-lookup returned a different counter")
	}
	g := reg.Gauge("workers")
	g.Set(4)
	if g.Value() != 4 {
		t.Fatalf("gauge = %v, want 4", g.Value())
	}
	h := reg.Histogram("lat_seconds", []float64{0.01, 0.1, 1})
	h.Observe(0.005)
	h.Observe(0.05)
	h.Observe(5)
	if h.Count() != 3 {
		t.Fatalf("hist count = %d, want 3", h.Count())
	}
	if got := h.Sum(); got < 5.05 || got > 5.06 {
		t.Fatalf("hist sum = %v", got)
	}

	snap := reg.Snapshot()
	if snap.Value("rounds_total") != 3 || snap.Value("workers") != 4 {
		t.Fatalf("snapshot = %v", snap)
	}
	if snap.Value("lat_seconds_count") != 3 {
		t.Fatalf("snapshot hist count = %v", snap.Value("lat_seconds_count"))
	}
	if snap.Value("lat_seconds_bucket_le_0.1") != 2 { // cumulative
		t.Fatalf("snapshot bucket = %v", snap.Value("lat_seconds_bucket_le_0.1"))
	}
}

func TestRegisterFuncReplaces(t *testing.T) {
	reg := NewRegistry()
	reg.RegisterFunc("live", func() float64 { return 1 })
	reg.RegisterFunc("live", func() float64 { return 2 })
	if got := reg.Snapshot().Value("live"); got != 2 {
		t.Fatalf("replaced func = %v, want 2", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("msgs_total").Add(7)
	reg.Gauge("ratio").Set(1.5)
	reg.Histogram("lat_seconds", []float64{0.1}).Observe(0.05)
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE msgs_total counter\nmsgs_total 7\n",
		"# TYPE ratio gauge\nratio 1.5\n",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="+Inf"} 1`,
		"lat_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestSnapshotWriteJSON(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a_total").Add(2)
	reg.Gauge("b").Set(0.25)
	var buf bytes.Buffer
	if err := reg.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var m map[string]float64
	if err := json.Unmarshal(buf.Bytes(), &m); err != nil {
		t.Fatalf("dump is not JSON: %v\n%s", err, buf.String())
	}
	if m["a_total"] != 2 || m["b"] != 0.25 {
		t.Fatalf("dump = %v", m)
	}
}

func TestServeMetricsAndPprof(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("smoke_total").Inc()
	ms, err := ServeMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("ServeMetrics: %v", err)
	}
	defer ms.Close()
	body := httpGet(t, "http://"+ms.Addr()+"/metrics")
	if !strings.Contains(body, "smoke_total 1") {
		t.Fatalf("/metrics missing counter:\n%s", body)
	}
	jsonBody := httpGet(t, "http://"+ms.Addr()+"/metrics.json")
	var m map[string]float64
	if err := json.Unmarshal([]byte(jsonBody), &m); err != nil {
		t.Fatalf("/metrics.json is not JSON: %v", err)
	}
	if !strings.Contains(httpGet(t, "http://"+ms.Addr()+"/debug/vars"), "memstats") {
		t.Fatalf("/debug/vars missing memstats")
	}

	ps, err := ServePprof("127.0.0.1:0")
	if err != nil {
		t.Fatalf("ServePprof: %v", err)
	}
	defer ps.Close()
	if !strings.Contains(httpGet(t, "http://"+ps.Addr()+"/debug/pprof/"), "goroutine") {
		t.Fatalf("pprof index missing profiles")
	}
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, b)
	}
	return string(b)
}

func TestRegisterTracer(t *testing.T) {
	reg := NewRegistry()
	tr := NewTracer(4)
	reg.RegisterTracer(tr)
	s := tr.Start()
	tr.Span(0, PhaseTrain, 0, 0, s)
	if got := reg.Snapshot().Value("obs_trace_spans"); got != 1 {
		t.Fatalf("obs_trace_spans = %v, want 1", got)
	}
}
