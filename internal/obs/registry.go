package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is
// usable; all methods are safe for concurrent use and tolerate a nil
// receiver.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable metric. Safe for concurrent use; nil-tolerant.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// DefLatencyBuckets are the fixed histogram upper bounds (seconds)
// used for phase latencies: 10 µs up to 1 s in a 1-2.5-5 ladder. The
// round engines' phases (per-client training ~100 µs–10 ms, socket
// RPCs ~30 µs) land mid-ladder at bench scale.
var DefLatencyBuckets = []float64{
	10e-6, 25e-6, 50e-6, 100e-6, 250e-6, 500e-6,
	1e-3, 2.5e-3, 5e-3, 10e-3, 25e-3, 50e-3,
	0.1, 0.25, 0.5, 1,
}

// Histogram is a fixed-bucket latency histogram (cumulative counts at
// export time, non-cumulative internally). Safe for concurrent use;
// nil-tolerant.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; an implicit +Inf follows
	counts  []atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-updated
	total   atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1)}
}

// Observe records one value (typically seconds).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.total.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.total.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// metric is one registered instrument.
type metric struct {
	name    string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	fn      func() float64
}

// Registry is an ordered, flat collection of named metrics: counters,
// gauges, fixed-bucket histograms and read-on-gather functions (live
// views over counters owned elsewhere, e.g. transport.Stats). Names
// follow Prometheus conventions (snake_case, _total suffix on
// counters). All methods are safe for concurrent use and tolerate a
// nil receiver, so instrumented code never branches on "metrics on?".
type Registry struct {
	mu      sync.Mutex
	byName  map[string]int
	metrics []metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]int)}
}

// registerLocked inserts m, replacing any previous metric of the same
// name (re-registration is how successive runs sharing one live
// registry hand over their gauge views; the name keeps its original
// position). Callers hold r.mu.
func (r *Registry) registerLocked(m metric) {
	if i, ok := r.byName[m.name]; ok {
		r.metrics[i] = m
	} else {
		r.byName[m.name] = len(r.metrics)
		r.metrics = append(r.metrics, m)
	}
}

// Counter returns the named counter, creating it on first use. On a
// nil registry it returns nil — a valid no-op counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[name]; ok {
		if c := r.metrics[i].counter; c != nil {
			return c
		}
	}
	c := &Counter{}
	r.registerLocked(metric{name: name, counter: c})
	return c
}

// Gauge returns the named gauge, creating it on first use (nil on a
// nil registry — a valid no-op gauge).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[name]; ok {
		if g := r.metrics[i].gauge; g != nil {
			return g
		}
	}
	g := &Gauge{}
	r.registerLocked(metric{name: name, gauge: g})
	return g
}

// Histogram returns the named fixed-bucket histogram, creating it
// with the given upper bounds (nil bounds mean DefLatencyBuckets) on
// first use. Nil on a nil registry.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if i, ok := r.byName[name]; ok {
		if h := r.metrics[i].hist; h != nil {
			return h
		}
	}
	if bounds == nil {
		bounds = DefLatencyBuckets
	}
	h := newHistogram(bounds)
	r.registerLocked(metric{name: name, hist: h})
	return h
}

// RegisterFunc registers fn as a live gauge view: its value is read
// at every gather. Re-registering a name replaces the previous view
// (successive simulation runs over one registry each install theirs).
// No-op on a nil registry.
func (r *Registry) RegisterFunc(name string, fn func() float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.registerLocked(metric{name: name, fn: fn})
	r.mu.Unlock()
}

// Snapshot is a point-in-time flat view of a registry: metric name →
// value. Histograms expand into name_count, name_sum and cumulative
// name_bucket_le_<bound> entries.
type Snapshot map[string]float64

// Value returns the named sample (0 when absent), the lookup the
// table renderers use.
func (s Snapshot) Value(name string) float64 { return s[name] }

// WriteJSON writes the snapshot as one sorted, indented JSON object —
// the end-of-run metrics dump format.
func (s Snapshot) WriteJSON(w io.Writer) error {
	names := make([]string, 0, len(s))
	for n := range s {
		names = append(names, n)
	}
	sort.Strings(names)
	// Hand-ordered object: encoding/json would sort map keys too, but
	// building the document explicitly keeps floats in %g form without
	// scientific-notation surprises for integer-valued counters.
	if _, err := io.WriteString(w, "{\n"); err != nil {
		return err
	}
	for i, n := range names {
		sep := ","
		if i == len(names)-1 {
			sep = ""
		}
		key, err := json.Marshal(n)
		if err != nil {
			return err
		}
		line := fmt.Sprintf("  %s: %s%s\n", key, formatSample(s[n]), sep)
		if _, err := io.WriteString(w, line); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "}\n")
	return err
}

// formatSample renders integral values without a fraction and
// everything else in shortest-round-trip form.
func formatSample(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// bucketKey renders a histogram bucket snapshot key.
func bucketKey(name string, le float64) string {
	return name + "_bucket_le_" + strconv.FormatFloat(le, 'g', -1, 64)
}

// Snapshot captures every metric's current value (nil registry → nil).
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	// Gather functions run outside the registry lock: they may call
	// back into arbitrary code (transport stats, pool stats).
	out := make(Snapshot, len(metrics))
	for _, m := range metrics {
		switch {
		case m.counter != nil:
			out[m.name] = float64(m.counter.Value())
		case m.gauge != nil:
			out[m.name] = m.gauge.Value()
		case m.fn != nil:
			out[m.name] = m.fn()
		case m.hist != nil:
			var cum int64
			for i, b := range m.hist.bounds {
				cum += m.hist.counts[i].Load()
				out[bucketKey(m.name, b)] = float64(cum)
			}
			out[m.name+"_count"] = float64(m.hist.Count())
			out[m.name+"_sum"] = m.hist.Sum()
		}
	}
	return out
}

// WritePrometheus writes the registry in Prometheus text exposition
// format (version 0.0.4): TYPE lines, counters/gauges as single
// samples, histograms with cumulative le buckets, +Inf, _sum and
// _count. Registration order is preserved.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	metrics := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	for _, m := range metrics {
		var err error
		switch {
		case m.counter != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", m.name, m.name, m.counter.Value())
		case m.gauge != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", m.name, m.name, formatSample(m.gauge.Value()))
		case m.fn != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", m.name, m.name, formatSample(m.fn()))
		case m.hist != nil:
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", m.name); err != nil {
				return err
			}
			var cum int64
			for i, b := range m.hist.bounds {
				cum += m.hist.counts[i].Load()
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, strconv.FormatFloat(b, 'g', -1, 64), cum); err != nil {
					return err
				}
			}
			if _, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", m.name, m.hist.Count()); err != nil {
				return err
			}
			_, err = fmt.Fprintf(w, "%s_sum %s\n%s_count %d\n", m.name, formatSample(m.hist.Sum()), m.name, m.hist.Count())
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// RegisterTracer installs live span-volume views of t (recorded and
// dropped span counts) into the registry.
func (r *Registry) RegisterTracer(t *Tracer) {
	if r == nil || t == nil {
		return
	}
	r.RegisterFunc("obs_trace_spans", func() float64 { return float64(t.Recorded()) })
	r.RegisterFunc("obs_trace_dropped_spans", func() float64 { return float64(t.Dropped()) })
}
